"""Tests for the protocol interface, registry, and SimView."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.base import (
    FloodingProtocol,
    SimView,
    available_protocols,
    make_protocol,
    register_protocol,
)


class TestRegistry:
    def test_all_paper_protocols_registered(self):
        names = available_protocols()
        for expected in ("opt", "dbao", "of", "naive", "dca", "crosslayer"):
            assert expected in names

    def test_make_protocol(self):
        proto = make_protocol("dbao", overhearing=False)
        assert proto.name == "dbao"
        assert proto.overhearing is False

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            make_protocol("bogus")

    def test_duplicate_registration_rejected(self):
        class Dup(FloodingProtocol):
            name = "opt"

            def propose(self, t, awake, view):
                return []

        with pytest.raises(ValueError, match="already registered"):
            register_protocol(Dup)

    def test_empty_name_rejected(self):
        class NoName(FloodingProtocol):
            def propose(self, t, awake, view):
                return []

        with pytest.raises(ValueError, match="non-empty name"):
            register_protocol(NoName)


@pytest.fixture
def view(line5, rng):
    schedules = ScheduleTable.random(5, 5, rng)
    workload = FloodWorkload(3)
    has = np.zeros((3, 5), dtype=bool)
    arrival = np.full((3, 5), -1, dtype=np.int64)
    # Source has all three; node 1 has packet 1 (arrived slot 4).
    has[:, 0] = True
    arrival[:, 0] = [0, 1, 2]
    has[1, 1] = True
    arrival[1, 1] = 4
    return SimView(line5, schedules, workload, has, arrival)


class TestSimView:
    def test_holds(self, view):
        assert view.holds(0, 0)
        assert view.holds(1, 1)
        assert not view.holds(1, 0)  # wait: node 1, packet 0

    def test_held_packets(self, view):
        assert view.held_packets(0).tolist() == [0, 1, 2]
        assert view.held_packets(1).tolist() == [1]
        assert view.held_packets(3).tolist() == []

    def test_arrival_slot(self, view):
        assert view.arrival_slot(0, 2) == 2
        assert view.arrival_slot(1, 1) == 4
        assert view.arrival_slot(3, 0) == -1

    def test_fcfs_head_uses_arrival_order(self, view):
        needed = np.asarray([True, True, True])
        assert view.fcfs_head(0, needed) == 0  # earliest arrival at source
        needed = np.asarray([False, True, True])
        assert view.fcfs_head(0, needed) == 1

    def test_fcfs_head_none(self, view):
        assert view.fcfs_head(3, np.asarray([True, True, True])) is None
        assert view.fcfs_head(0, np.zeros(3, dtype=bool)) is None

    def test_candidate_senders(self, view):
        needed = np.asarray([True, False, False])
        nbs = np.asarray([0, 2])  # in-neighbors of node 1
        cands = view.candidate_senders(nbs, needed)
        assert cands.tolist() == [0]

    def test_candidate_senders_empty(self, view):
        assert view.candidate_senders(np.asarray([], dtype=np.int64),
                                      np.ones(3, bool)).size == 0
        assert view.candidate_senders(np.asarray([0]),
                                      np.zeros(3, bool)).size == 0

    def test_oracle_accessors(self, view):
        needed = view.oracle_needed(1)
        assert needed.tolist() == [True, False, True]
        possession = view.oracle_possession()
        assert possession.shape == (3, 5)
        with pytest.raises(ValueError):
            possession[0, 0] = False  # read-only view
