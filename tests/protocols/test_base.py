"""Tests for the protocol interface, registry, and SimView."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.base import (
    FloodingProtocol,
    SimView,
    available_protocols,
    make_protocol,
    register_protocol,
)


class TestRegistry:
    def test_all_paper_protocols_registered(self):
        names = available_protocols()
        for expected in ("opt", "dbao", "of", "naive", "dca", "crosslayer"):
            assert expected in names

    def test_make_protocol(self):
        proto = make_protocol("dbao", overhearing=False)
        assert proto.name == "dbao"
        assert proto.overhearing is False

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            make_protocol("bogus")

    def test_duplicate_registration_rejected(self):
        class Dup(FloodingProtocol):
            name = "opt"

            def propose(self, t, awake, view):
                return []

        with pytest.raises(ValueError, match="already registered"):
            register_protocol(Dup)

    def test_empty_name_rejected(self):
        class NoName(FloodingProtocol):
            def propose(self, t, awake, view):
                return []

        with pytest.raises(ValueError, match="non-empty name"):
            register_protocol(NoName)


@pytest.fixture
def scratch_registry():
    """Unregister protocols a test added, keeping the global registry clean."""
    from repro.protocols import base as base_mod

    before = set(base_mod._REGISTRY)
    yield
    for name in set(base_mod._REGISTRY) - before:
        del base_mod._REGISTRY[name]


class TestInitKwargsRecording:
    """make_protocol records constructor kwargs uniformly (Fig. 9 fix)."""

    def test_records_passed_kwargs(self):
        assert make_protocol("of", opp_quantile=0.3).init_kwargs == {
            "opp_quantile": 0.3
        }
        assert make_protocol("opt").init_kwargs == {}

    def test_records_even_when_init_forgets(self, scratch_registry):
        # Regression: a protocol whose __init__ never sets init_kwargs
        # used to have its constructor args silently dropped by the
        # Fig. 9 probe reconstruction.
        @register_protocol
        class Forgetful(FloodingProtocol):
            name = "_test_forgetful"

            def __init__(self, knob=1):
                self.knob = knob  # deliberately no self.init_kwargs

            def propose(self, t, awake, view):
                return []

        proto = make_protocol("_test_forgetful", knob=7)
        assert proto.knob == 7
        assert proto.init_kwargs == {"knob": 7}

    def test_probe_floods_reconstruct_with_recorded_kwargs(self, scratch_registry):
        # End-to-end regression for the Fig. 9 decomposition path: the
        # single-packet probe floods must rebuild the protocol with the
        # kwargs it was created with, not with defaults.
        from repro.net.packet import FloodWorkload
        from repro.net.schedule import ScheduleTable
        from repro.sim.engine import SimConfig, run_flood

        constructed = []

        @register_protocol
        class Probed(FloodingProtocol):
            name = "_test_probed"

            def __init__(self, knob=0):
                constructed.append(knob)
                self.knob = knob  # again: no self.init_kwargs

            def propose(self, t, awake, view):
                return []

        topo = line_topology(3, prr=1.0)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(topo.n_nodes, 4, rng)
        proto = make_protocol("_test_probed", knob=5)
        run_flood(
            topo, schedules, FloodWorkload(1), proto, rng,
            SimConfig(max_slots=4), measure_transmission_delay=True,
        )
        assert len(constructed) >= 2  # the original plus >= 1 probe
        assert constructed == [5] * len(constructed)


@pytest.fixture
def view(line5, rng):
    schedules = ScheduleTable.random(5, 5, rng)
    workload = FloodWorkload(3)
    has = np.zeros((3, 5), dtype=bool)
    arrival = np.full((3, 5), -1, dtype=np.int64)
    # Source has all three; node 1 has packet 1 (arrived slot 4).
    has[:, 0] = True
    arrival[:, 0] = [0, 1, 2]
    has[1, 1] = True
    arrival[1, 1] = 4
    return SimView(line5, schedules, workload, has, arrival)


class TestSimView:
    def test_holds(self, view):
        assert view.holds(0, 0)
        assert view.holds(1, 1)
        assert not view.holds(1, 0)  # wait: node 1, packet 0

    def test_held_packets(self, view):
        assert view.held_packets(0).tolist() == [0, 1, 2]
        assert view.held_packets(1).tolist() == [1]
        assert view.held_packets(3).tolist() == []

    def test_arrival_slot(self, view):
        assert view.arrival_slot(0, 2) == 2
        assert view.arrival_slot(1, 1) == 4
        assert view.arrival_slot(3, 0) == -1

    def test_fcfs_head_uses_arrival_order(self, view):
        needed = np.asarray([True, True, True])
        assert view.fcfs_head(0, needed) == 0  # earliest arrival at source
        needed = np.asarray([False, True, True])
        assert view.fcfs_head(0, needed) == 1

    def test_fcfs_head_none(self, view):
        assert view.fcfs_head(3, np.asarray([True, True, True])) is None
        assert view.fcfs_head(0, np.zeros(3, dtype=bool)) is None

    def test_candidate_senders(self, view):
        needed = np.asarray([True, False, False])
        nbs = np.asarray([0, 2])  # in-neighbors of node 1
        cands = view.candidate_senders(nbs, needed)
        assert cands.tolist() == [0]

    def test_candidate_senders_empty(self, view):
        assert view.candidate_senders(np.asarray([], dtype=np.int64),
                                      np.ones(3, bool)).size == 0
        assert view.candidate_senders(np.asarray([0]),
                                      np.zeros(3, bool)).size == 0

    def test_oracle_accessors(self, view):
        needed = view.oracle_needed(1)
        assert needed.tolist() == [True, False, True]
        possession = view.oracle_possession()
        assert possession.shape == (3, 5)
        with pytest.raises(ValueError):
            possession[0, 0] = False  # read-only view


class TestBatchContract:
    """Either proposal method may be overridden; each adapts the other."""

    def test_list_protocol_gets_batch_adapter(self, view):
        from repro.net.radio import Transmission, TxBatch

        class ListProto(FloodingProtocol):
            name = ""

            def propose(self, t, awake, view):
                return [Transmission(sender=0, receiver=1, packet=0)]

        batch = ListProto().propose_batch(0, np.asarray([1]), view)
        assert isinstance(batch, TxBatch)
        assert batch.senders.tolist() == [0]
        assert batch.receivers.tolist() == [1]
        assert batch.packets.tolist() == [0]

    def test_batch_protocol_gets_list_adapter(self, view):
        from repro.net.radio import TxBatch

        class BatchProto(FloodingProtocol):
            name = ""

            def propose_batch(self, t, awake, view):
                return TxBatch(
                    np.asarray([0], dtype=np.int64),
                    np.asarray([1], dtype=np.int64),
                    np.asarray([2], dtype=np.int64),
                )

        txs = BatchProto().propose(0, np.asarray([1]), view)
        assert [(tx.sender, tx.receiver, tx.packet) for tx in txs] == [(0, 1, 2)]

    def test_overriding_neither_raises(self, view):
        class Neither(FloodingProtocol):
            name = ""

        with pytest.raises(NotImplementedError, match="must override"):
            Neither().propose(0, np.asarray([1]), view)
        with pytest.raises(NotImplementedError, match="must override"):
            Neither().propose_batch(0, np.asarray([1]), view)

    def test_all_registered_protocols_emit_batches(self, view):
        # The engine only ever consumes batches: every registered
        # protocol must produce a TxBatch through propose_batch
        # (natively or via the adapter).
        from repro.net.radio import TxBatch
        from repro.net.generators import line_topology
        from repro.sim.engine import SimConfig, run_flood

        topo = line_topology(4, prr=1.0)
        for name in available_protocols():
            proto = make_protocol(name)
            rng = np.random.default_rng(3)
            schedules = ScheduleTable.random(5, 4, np.random.default_rng(4))
            proto.prepare(topo, schedules, FloodWorkload(2), rng)
            has = np.zeros((2, 5), dtype=bool)
            has[:, 0] = True
            arrival = np.where(has, 0, -1).astype(np.int64)
            v = SimView(topo, schedules, FloodWorkload(2), has, arrival)
            batch = proto.propose_batch(0, schedules.awake_at(0), v)
            assert isinstance(batch, TxBatch)
