"""Tests for duty-cycle-aware tree flooding (DCA)."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.net.topology import Topology
from repro.protocols.dca import DutyCycleAwareFlooding, build_delay_optimal_tree
from repro.sim.engine import SimConfig, run_flood


class TestDelayOptimalTree:
    def test_chain_structure(self, line5):
        offsets = np.asarray([0, 1, 2, 3, 4])
        parent, dist = build_delay_optimal_tree(line5, offsets, period=5)
        assert parent.tolist() == [-1, 0, 1, 2, 3]
        # Perfectly staggered offsets: one slot per hop.
        assert dist.tolist() == [0, 2, 3, 4, 5]

    def test_prefers_schedule_aligned_path(self):
        # Diamond: 0 -> {1, 2} -> 3. Node 1 wakes immediately, node 2 a
        # full period later: the tree must route 3 through the faster arm
        # if that also reaches 3 sooner.
        mat = np.zeros((4, 4))
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            mat[a, b] = mat[b, a] = 1.0
        topo = Topology(mat)
        offsets = np.asarray([0, 1, 9, 2])  # node1 wakes at 1, node2 at 9
        parent, dist = build_delay_optimal_tree(topo, offsets, period=10)
        assert parent[3] == 1

    def test_wait_never_exceeds_period(self, line5):
        offsets = np.asarray([0, 3, 1, 4, 2])
        parent, dist = build_delay_optimal_tree(line5, offsets, period=5)
        hops = np.diff(dist)
        assert np.all(hops >= 1) and np.all(hops <= 5 + 1)

    def test_offsets_shape_validated(self, line5):
        with pytest.raises(ValueError):
            build_delay_optimal_tree(line5, np.asarray([0, 1]), period=5)


class TestDcaBehavior:
    def test_completes_reliable_network(self, line5):
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(5, 5, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(3), DutyCycleAwareFlooding(),
            np.random.default_rng(1), SimConfig(coverage_target=1.0),
        )
        assert result.completed

    def test_completes_lossy_network_eventually(self, small_rgg):
        rng = np.random.default_rng(5)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(2), DutyCycleAwareFlooding(),
            np.random.default_rng(6), SimConfig(),
        )
        assert result.completed

    def test_only_tree_edges_used(self, small_rgg):
        rng = np.random.default_rng(5)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 8, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(1), DutyCycleAwareFlooding(),
            np.random.default_rng(6),
            SimConfig(track_events=True),
        )
        parent, _ = build_delay_optimal_tree(
            small_rgg, schedules.offsets, schedules.period
        )
        for e in result.events:
            if e.kind.value == "tx":
                assert parent[e.receiver] == e.sender
