"""Tests for Flash flooding (capture-effect exploitation)."""

import numpy as np
import pytest

from repro.net.packet import FloodWorkload
from repro.net.radio import RadioModel
from repro.net.schedule import ScheduleTable
from repro.protocols.flash import FlashFlooding
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


class TestFlash:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlashFlooding(max_concurrent=0)

    def test_completes_chain(self, line5):
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(5, 5, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(2), FlashFlooding(),
            np.random.default_rng(1), SimConfig(coverage_target=1.0),
        )
        assert result.completed

    def test_completes_lossy_network(self, small_rgg):
        rng = np.random.default_rng(3)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(3), FlashFlooding(),
            np.random.default_rng(4), SimConfig(),
        )
        assert result.completed

    def test_concurrency_cap_respected(self, small_rgg):
        rng = np.random.default_rng(3)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(1), FlashFlooding(max_concurrent=2),
            np.random.default_rng(4),
            SimConfig(track_events=True),
        )
        from collections import Counter

        per_slot_receiver = Counter(
            (e.t, e.receiver) for e in result.events if e.kind.value == "tx"
        )
        assert max(per_slot_receiver.values()) <= 2

    def test_capture_is_what_makes_it_work(self, small_rgg):
        # With capture disabled (all overlaps destructive), Flash's
        # concurrent transmissions collide far more often.
        rng = np.random.default_rng(5)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)

        def run_with(radio):
            return run_flood(
                small_rgg, schedules, FloodWorkload(2), FlashFlooding(),
                np.random.default_rng(6),
                SimConfig(radio=radio, max_slots=200_000),
            )

        with_capture = run_with(RadioModel())
        without = run_with(
            RadioModel(capture_guard=1.0, capture_margin_db=None,
                       capture_ratio=None)
        )
        assert without.metrics.collisions > with_capture.metrics.collisions

    def test_registered(self):
        from repro.protocols import make_protocol

        proto = make_protocol("flash", max_concurrent=3)
        assert proto.max_concurrent == 3
