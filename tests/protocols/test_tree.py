"""Tests for the ETX tree and delay-distribution machinery."""

import math

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.topology import SOURCE, Topology
from repro.protocols.tree import EtxTree, build_etx_tree, hop_delay_moments


class TestHopDelayMoments:
    def test_perfect_link(self):
        mean, var = hop_delay_moments(1.0, 10)
        assert mean == pytest.approx(10.0)
        assert var == 0.0

    def test_lossy_link(self):
        mean, var = hop_delay_moments(0.5, 10)
        assert mean == pytest.approx(20.0)
        assert var == pytest.approx(100 * 0.5 / 0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            hop_delay_moments(0.0, 10)
        with pytest.raises(ValueError):
            hop_delay_moments(0.5, 0)


class TestBuildEtxTree:
    def test_chain_parents(self, line5):
        tree = build_etx_tree(line5, period=10)
        assert tree.parent.tolist() == [-1, 0, 1, 2, 3]
        assert tree.etx_cost.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_prefers_reliable_two_hop_over_lossy_one_hop(self):
        # 0 -> 2 direct at PRR 0.25 (ETX 4) vs 0 ->1 ->2 at PRR 1 (ETX 2).
        mat = np.zeros((3, 3))
        mat[0, 1] = mat[1, 2] = 1.0
        mat[1, 0] = mat[2, 1] = 1.0
        mat[0, 2] = mat[2, 0] = 0.25
        topo = Topology(mat)
        tree = build_etx_tree(topo, period=10)
        assert tree.parent[2] == 1

    def test_unreachable_nodes(self):
        mat = np.zeros((3, 3))
        mat[0, 1] = mat[1, 0] = 1.0
        topo = Topology(mat)
        tree = build_etx_tree(topo, period=5)
        assert tree.parent[2] == -1
        assert not tree.reachable(2)
        assert math.isinf(tree.etx_cost[2])
        assert tree.depth(2) == -1

    def test_delay_moments_accumulate(self, lossy_line5):
        period = 10
        tree = build_etx_tree(lossy_line5, period)
        hop_mean, hop_var = hop_delay_moments(0.6, period)
        assert tree.delay_mean[3] == pytest.approx(3 * hop_mean)
        assert tree.delay_var[3] == pytest.approx(3 * hop_var)

    def test_children_inverse_of_parent(self, line5):
        tree = build_etx_tree(line5, period=5)
        assert tree.children(0).tolist() == [1]
        assert tree.children(4).tolist() == []
        assert tree.is_tree_edge(2, 3)
        assert not tree.is_tree_edge(3, 2)

    def test_depth(self, line5):
        tree = build_etx_tree(line5, period=5)
        assert tree.depth(SOURCE) == 0
        assert tree.depth(4) == 4


class TestDelayQuantile:
    def test_median_is_mean_for_normal(self, lossy_line5):
        tree = build_etx_tree(lossy_line5, period=10)
        q50 = tree.delay_quantile(2, 0.5)
        assert q50 == pytest.approx(float(tree.delay_mean[2]))

    def test_higher_quantile_is_larger(self, lossy_line5):
        tree = build_etx_tree(lossy_line5, period=10)
        assert tree.delay_quantile(3, 0.9) > tree.delay_quantile(3, 0.5)

    def test_unreachable_is_inf(self):
        mat = np.zeros((3, 3))
        mat[0, 1] = mat[1, 0] = 1.0
        tree = build_etx_tree(Topology(mat), period=5)
        assert math.isinf(tree.delay_quantile(2, 0.8))

    def test_quantile_validation(self, line5):
        tree = build_etx_tree(line5, period=5)
        with pytest.raises(ValueError):
            tree.delay_quantile(1, 0.0)
        with pytest.raises(ValueError):
            tree.delay_quantile(1, 1.0)
