"""Tests for Opportunistic Flooding (OF)."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.oppflood import OpportunisticFlooding
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


def flood(topo, n_packets=2, period=5, seed=0, **proto_kwargs):
    rng = np.random.default_rng(seed)
    schedules = ScheduleTable.random(topo.n_nodes, period, rng)
    return run_flood(
        topo, schedules, FloodWorkload(n_packets),
        OpportunisticFlooding(**proto_kwargs),
        np.random.default_rng(seed + 1), SimConfig(coverage_target=1.0),
    )


class TestOfBehavior:
    def test_completes_chain(self, line5):
        assert flood(line5).completed

    def test_completes_lossy_network(self, small_rgg):
        assert flood(small_rgg, seed=3).completed

    def test_tree_edges_always_forwarded(self, line5):
        # On a chain every edge is a tree edge: OF behaves like tree
        # flooding and must deliver hop by hop.
        rng = np.random.default_rng(1)
        schedules = ScheduleTable.random(5, 4, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(1), OpportunisticFlooding(),
            np.random.default_rng(2),
            SimConfig(coverage_target=1.0, track_events=True),
        )
        senders = [e.sender for e in result.events if e.kind.value == "deliver"]
        assert senders == [0, 1, 2, 3]

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            OpportunisticFlooding(opp_quantile=0.0)
        with pytest.raises(ValueError):
            OpportunisticFlooding(opp_quantile=1.0)

    def test_smaller_quantile_fewer_transmissions(self, small_rgg):
        tight = run_experiment(small_rgg, ExperimentSpec(
            protocol="of", duty_ratio=0.1, n_packets=4, seed=5,
            protocol_kwargs={"opp_quantile": 0.1},
        ))
        loose = run_experiment(small_rgg, ExperimentSpec(
            protocol="of", duty_ratio=0.1, n_packets=4, seed=5,
            protocol_kwargs={"opp_quantile": 0.95},
        ))
        assert tight.mean_tx_attempts() <= loose.mean_tx_attempts()

    def test_init_kwargs_recorded(self):
        assert OpportunisticFlooding(opp_quantile=0.3).init_kwargs == {
            "opp_quantile": 0.3
        }

    def test_final_coverage_complete(self, small_rgg):
        result = flood(small_rgg, n_packets=3, seed=9)
        reach = small_rgg.reachable_from_source()
        assert result.has[:, reach].all()
