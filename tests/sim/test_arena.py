"""Scratch-arena unit behaviour and aliasing safety.

The arena is pure memory policy: borrowing preallocated buffers instead
of calling ``np.empty`` per slot must never change a trajectory. The
aliasing tests run every batch-capable golden scenario (all seven
protocols, plus bursty links) twice — once against a shared
:class:`ScratchArena`, once against a :class:`NullArena` (fresh
allocation per borrow, the pre-arena behaviour) — and require the
resulting :class:`FloodResult` lists to be bit-identical under pickle.

Cross-contamination is covered by interleaving: floods of different
protocols and sizes borrow from ONE arena in alternation, so every
buffer is handed back stale-full of another flood's data before reuse.
If any borrower read stale content instead of overwriting, the second
pass would diverge from its fresh-arena twin.
"""

import pickle

import numpy as np
import pytest

from repro.net.generators import random_geometric_topology
from repro.net.packet import FloodWorkload
from repro.net.radio import RadioModel
from repro.net.schedule import ScheduleTable
from repro.net.dynamics import GilbertElliott
from repro.protocols import available_protocols, make_protocol
from repro.protocols.opt import opt_radio_model
from repro.sim.arena import NullArena, ScratchArena, global_arena
from repro.sim.batch import run_flood_batch
from repro.sim.engine import SimConfig


# ---------------------------------------------------------------- unit


def test_buf_reuses_backing_until_capacity_miss():
    a = ScratchArena()
    first = a.buf("k", 20)
    base = first.base if first.base is not None else first
    again = a.buf("k", 6)
    base2 = again.base if again.base is not None else again
    assert base2 is base  # smaller borrow served from the same backing
    assert a.counters() == (2, 1)
    a.buf("k", 21)  # capacity miss forces one regrow
    assert a.grows == 2


def test_buf_growth_is_geometric():
    a = ScratchArena()
    a.buf("k", 20)
    a.buf("k", 21)  # regrow doubles: capacity is now >= 40
    assert a.buf("k", 40).size == 40  # capacity hit, no third grow
    assert a.grows == 2


def test_buf_dtype_change_reallocates():
    a = ScratchArena()
    a.buf("k", 4, np.int64)
    out = a.buf("k", 4, np.float64)
    assert out.dtype == np.float64
    assert a.grows == 2


def test_keys_are_isolated():
    a = ScratchArena()
    x = a.buf("x", 8)
    y = a.buf("y", 8)
    x[:] = 1
    y[:] = 2
    assert x.sum() == 8  # y's fill must not alias x


def test_buf2_shape_and_contiguity():
    a = ScratchArena()
    m = a.buf2("m", (3, 5), np.float64)
    assert m.shape == (3, 5) and m.flags.c_contiguous
    m[:] = 0.5
    assert a.buf2("m", (3, 5), np.float64).base is m.base


def test_arange_is_monotone_prefix():
    a = ScratchArena()
    r = a.arange(7)
    np.testing.assert_array_equal(r, np.arange(7))
    r2 = a.arange(5)
    np.testing.assert_array_equal(r2, np.arange(5))
    assert r2.base is a.arange(3).base  # served from one backing ramp
    np.testing.assert_array_equal(a.arange(100), np.arange(100))


def test_snapshot_shape():
    a = ScratchArena()
    a.buf("k", 16)
    snap = a.snapshot()
    assert snap["buffers"] == 1 and snap["borrows"] == 1
    assert snap["nbytes"] >= 16 * 8


def test_null_arena_always_allocates_fresh():
    a = NullArena()
    x = a.buf("k", 4)
    y = a.buf("k", 4)
    assert x is not y and x.base is None and y.base is None
    assert a.counters() == (2, 2)
    assert a.snapshot()["nbytes"] == 0


def test_global_arena_is_process_singleton():
    assert global_arena() is global_arena()
    assert isinstance(global_arena(), ScratchArena)


# ------------------------------------------------------- aliasing gate

M = 3
PERIOD = 5
N_REPS = 3


def _substrate(n_nodes=25, topo_seed=7, sched_seed=8):
    rng = np.random.default_rng(topo_seed)
    topo = random_geometric_topology(n_nodes, area_m=180.0, rng=rng)
    schedules = ScheduleTable.random(
        topo.n_nodes, PERIOD, np.random.default_rng(sched_seed)
    )
    return topo, schedules


def _config(protocol, fast_forward=True):
    kwargs = {"max_slots": 600, "fast_forward": fast_forward}
    if protocol == "opt":
        kwargs["radio"] = opt_radio_model()
    elif protocol == "crosslayer":
        kwargs["radio"] = RadioModel(overhearing=True)
    return SimConfig(**kwargs)


def _run(protocol, arena, *, bursty=False, fast_forward=True, n_nodes=25):
    topo, schedules = _substrate(n_nodes)
    dyn = None
    if bursty:
        dyn = [
            GilbertElliott(topo, rng=np.random.default_rng(123 + rep))
            for rep in range(N_REPS)
        ]
    return run_flood_batch(
        topo,
        [schedules] * N_REPS,
        FloodWorkload(M),
        make_protocol(protocol),
        [np.random.default_rng(42 + rep) for rep in range(N_REPS)],
        _config(protocol, fast_forward),
        dynamics_list=dyn,
        arena=arena,
    )


#: Every batch-capable golden scenario: the seven registered protocols
#: on static links, plus the bursty-dynamics variant.
ALIAS_SCENARIOS = [(proto, False) for proto in sorted(available_protocols())]
ALIAS_SCENARIOS += [("dbao", True), ("opt", True)]


@pytest.mark.parametrize("fast_forward", [True, False])
@pytest.mark.parametrize(
    "protocol,bursty",
    ALIAS_SCENARIOS,
    ids=[f"{p}{'-bursty' if b else ''}" for p, b in ALIAS_SCENARIOS],
)
def test_arena_on_off_bit_identical(protocol, bursty, fast_forward):
    shared = ScratchArena()
    with_arena = _run(protocol, shared, bursty=bursty,
                      fast_forward=fast_forward)
    without = _run(protocol, NullArena(), bursty=bursty,
                   fast_forward=fast_forward)
    assert ([pickle.dumps(r) for r in with_arena]
            == [pickle.dumps(r) for r in without])
    assert shared.borrows > 0  # the run actually exercised the arena


def test_interleaved_floods_share_one_arena_without_contamination():
    """A-B-A alternation on one arena reproduces fresh-arena results.

    The two floods differ in protocol AND topology size, so every
    backing buffer is returned carrying the other flood's stale data
    (often at a different length) before each reuse. Any borrower that
    trusts stale contents diverges here.
    """
    fresh = {
        ("dbao", 25): _run("dbao", NullArena(), n_nodes=25),
        ("of", 40): _run("of", NullArena(), n_nodes=40),
    }
    shared = ScratchArena()
    for protocol, n_nodes in [("dbao", 25), ("of", 40), ("dbao", 25),
                              ("of", 40), ("dbao", 25)]:
        got = _run(protocol, shared, n_nodes=n_nodes)
        want = fresh[(protocol, n_nodes)]
        assert ([pickle.dumps(r) for r in got]
                == [pickle.dumps(r) for r in want]), (
            f"{protocol}/{n_nodes} diverged under the shared arena")


def test_warm_arena_stops_growing():
    """Steady state: a repeated identical flood forces zero regrows."""
    arena = ScratchArena()
    _run("dbao", arena)  # warmup: buffers grow to working-set size
    grows = arena.grows
    _run("dbao", arena)
    assert arena.grows == grows
