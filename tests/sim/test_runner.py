"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.sim.runner import ExperimentSpec, run_experiment, run_protocol_sweep


@pytest.fixture
def topo():
    return line_topology(5, prr=1.0)


class TestExperimentSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="opt", duty_ratio=0.0, n_packets=1)
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="opt", duty_ratio=0.1, n_packets=0)
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="opt", duty_ratio=0.1, n_packets=1,
                           n_replications=0)


class TestRunExperiment:
    def test_basic(self, topo):
        spec = ExperimentSpec(protocol="opt", duty_ratio=0.2, n_packets=2,
                              seed=1, coverage_target=1.0)
        summary = run_experiment(topo, spec)
        assert summary.n_runs == 1
        assert summary.completion_rate() == 1.0
        assert np.isfinite(summary.mean_delay())

    def test_replications_aggregate(self, topo):
        spec = ExperimentSpec(protocol="opt", duty_ratio=0.2, n_packets=2,
                              seed=1, n_replications=3, coverage_target=1.0)
        summary = run_experiment(topo, spec)
        assert summary.n_runs == 3
        assert summary.per_packet_delay().shape == (2,)

    def test_deterministic(self, topo):
        spec = ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2, seed=4)
        a = run_experiment(topo, spec)
        b = run_experiment(topo, spec)
        assert a.mean_delay() == b.mean_delay()
        assert a.mean_failures() == b.mean_failures()

    def test_paired_streams_across_protocols(self, topo):
        # Same seed -> identical schedules for different protocols: the
        # first source transmission happens at the same wake slot.
        specs = [
            ExperimentSpec(protocol=p, duty_ratio=0.2, n_packets=1, seed=9)
            for p in ("opt", "dbao")
        ]
        results = [run_experiment(topo, s).results[0] for s in specs]
        first_tx = [r.metrics.delays.first_tx[0] for r in results]
        assert first_tx[0] == first_tx[1]

    def test_opt_gets_collision_free_radio(self, topo):
        spec = ExperimentSpec(protocol="opt", duty_ratio=0.2, n_packets=3, seed=2)
        summary = run_experiment(topo, spec)
        assert summary.mean_collisions() == 0.0

    def test_unknown_protocol(self, topo):
        spec = ExperimentSpec(protocol="nope", duty_ratio=0.2, n_packets=1)
        with pytest.raises(KeyError):
            run_experiment(topo, spec)

    def test_transmission_delay_measured_on_request(self, topo):
        spec = ExperimentSpec(
            protocol="opt", duty_ratio=0.2, n_packets=3, seed=1,
            measure_transmission_delay=True, coverage_target=1.0,
        )
        summary = run_experiment(topo, spec)
        td = summary.per_packet_transmission_delay()
        assert td is not None and td.shape == (3,)
        assert np.all(td > 0)

    def test_transmission_delay_absent_by_default(self, topo):
        spec = ExperimentSpec(protocol="opt", duty_ratio=0.2, n_packets=2, seed=1)
        summary = run_experiment(topo, spec)
        assert summary.per_packet_transmission_delay() is None


class TestProtocolSweep:
    def test_grid_shape(self, topo):
        grid = run_protocol_sweep(
            topo, protocols=("opt", "dbao"), duty_ratios=(0.1, 0.25),
            n_packets=1, seed=3,
        )
        assert set(grid) == {"opt", "dbao"}
        assert set(grid["opt"]) == {0.1, 0.25}
        for proto in grid:
            for duty in grid[proto]:
                assert grid[proto][duty].completion_rate() == 1.0

    def test_higher_duty_is_faster(self, topo):
        grid = run_protocol_sweep(
            topo, protocols=("opt",), duty_ratios=(0.05, 0.5),
            n_packets=2, seed=3,
        )
        assert grid["opt"][0.5].mean_delay() < grid["opt"][0.05].mean_delay()

    def test_protocol_kwargs_forwarded(self, topo):
        grid = run_protocol_sweep(
            topo, protocols=("of",), duty_ratios=(0.2,), n_packets=1, seed=3,
            protocol_kwargs={"of": {"opp_quantile": 0.3}},
        )
        assert grid["of"][0.2].completion_rate() == 1.0
