"""Tests for flood metrics (the 99% rule, delay decomposition)."""

import numpy as np
import pytest

from repro.sim.metrics import FloodMetrics, PacketDelays, coverage_threshold


class TestCoverageThreshold:
    def test_paper_99_rule(self):
        # 296 reachable sensors at 99% -> 294.
        assert coverage_threshold(296, 0.99) == 294

    def test_full_coverage(self):
        assert coverage_threshold(100, 1.0) == 100

    def test_at_least_one(self):
        assert coverage_threshold(1, 0.01) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_threshold(0, 0.99)
        with pytest.raises(ValueError):
            coverage_threshold(10, 0.0)


def make_delays(generated, first_tx, completed):
    return PacketDelays(
        generated=np.asarray(generated, dtype=np.int64),
        first_tx=np.asarray(first_tx, dtype=np.int64),
        completed=np.asarray(completed, dtype=np.int64),
    )


class TestPacketDelays:
    def test_total_delay(self):
        d = make_delays([0, 0], [0, 10], [99, 59])
        assert d.total_delay().tolist() == [100, 50]

    def test_incomplete_marked(self):
        d = make_delays([0, 0], [0, 5], [20, -1])
        assert d.total_delay().tolist() == [21, -1]
        assert not d.all_completed
        assert d.makespan() == -1

    def test_queueing_at_source(self):
        d = make_delays([0, 0, 0], [0, 12, 30], [5, 20, 40])
        assert d.queueing_delay_at_source().tolist() == [0, 12, 30]

    def test_makespan(self):
        d = make_delays([0, 0], [0, 1], [10, 30])
        assert d.makespan() == 30

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            make_delays([0], [0, 1], [2, 3])


def make_metrics(**overrides):
    kwargs = dict(
        delays=make_delays([0, 0], [0, 2], [10, 20]),
        tx_attempts=50,
        tx_failures=10,
        collisions=4,
        duplicates=2,
        overhears=3,
        elapsed_slots=30,
        coverage_per_packet=np.asarray([1.0, 0.99]),
    )
    kwargs.update(overrides)
    return FloodMetrics(**kwargs)


class TestFloodMetrics:
    def test_average_delay(self):
        m = make_metrics()
        assert m.average_delay() == pytest.approx((11 + 19) / 2)

    def test_average_ignores_incomplete(self):
        m = make_metrics(delays=make_delays([0, 0], [0, 2], [10, -1]))
        assert m.average_delay() == pytest.approx(11.0)

    def test_nan_when_nothing_completed(self):
        m = make_metrics(delays=make_delays([0], [0], [-1]),
                         coverage_per_packet=np.asarray([0.5]))
        assert np.isnan(m.average_delay())

    def test_failure_ratio(self):
        assert make_metrics().failure_ratio() == pytest.approx(0.2)

    def test_blocking_delay_requires_transmission_delay(self):
        m = make_metrics()
        with pytest.raises(ValueError):
            m.blocking_delay()
        m2 = make_metrics(transmission_delay=np.asarray([5, 6], dtype=np.int64))
        assert m2.blocking_delay().tolist() == [6, 13]

    def test_blocking_delay_clamped_nonnegative(self):
        m = make_metrics(transmission_delay=np.asarray([100, 6], dtype=np.int64))
        assert m.blocking_delay()[0] == 0

    def test_summary_keys(self):
        s = make_metrics().summary()
        for key in ("avg_delay", "makespan", "tx_failures", "failure_ratio"):
            assert key in s

    def test_invariant_validation(self):
        with pytest.raises(ValueError):
            make_metrics(tx_failures=100)  # failures > attempts
        with pytest.raises(ValueError):
            make_metrics(collisions=50)  # collisions > failures
