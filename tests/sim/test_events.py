"""Tests for the event log."""

import pytest

from repro.sim.events import EventKind, EventLog, SimEvent


class TestSimEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimEvent(-1, EventKind.TX, 0)
        with pytest.raises(ValueError):
            SimEvent(0, EventKind.TX, -1)


class TestEventLog:
    def test_time_order_enforced(self):
        log = EventLog()
        log.record(SimEvent(5, EventKind.INJECT, 0))
        with pytest.raises(ValueError):
            log.record(SimEvent(3, EventKind.TX, 0))

    def test_same_slot_allowed(self):
        log = EventLog()
        log.record(SimEvent(5, EventKind.TX, 0, 0, 1))
        log.record(SimEvent(5, EventKind.DELIVER, 0, 0, 1))
        assert len(log) == 2

    def test_queries(self):
        log = EventLog()
        log.record(SimEvent(0, EventKind.INJECT, 0))
        log.record(SimEvent(1, EventKind.TX, 0, 0, 1))
        log.record(SimEvent(1, EventKind.TX, 1, 2, 3))
        log.record(SimEvent(2, EventKind.DELIVER, 0, 0, 1))
        assert log.count(EventKind.TX) == 2
        assert len(log.of_kind(EventKind.INJECT)) == 1
        assert len(log.for_packet(0)) == 3

    def test_busy_slots_feed_compact_timeline(self):
        from repro.core.compact_time import CompactTimeline

        log = EventLog()
        log.record(SimEvent(1, EventKind.TX, 0, 0, 1))
        log.record(SimEvent(1, EventKind.TX, 1, 2, 3))
        log.record(SimEvent(4, EventKind.TX, 0, 1, 2))
        tl = CompactTimeline(log.busy_slots())
        assert len(tl) == 2
        assert tl.to_original(1) == 4

    def test_iteration(self):
        log = EventLog()
        log.record(SimEvent(0, EventKind.INJECT, 0))
        assert [e.kind for e in log] == [EventKind.INJECT]
