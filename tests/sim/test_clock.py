"""Tests for the slotted clock."""

import pytest

from repro.sim.clock import SlottedClock


class TestSlottedClock:
    def test_starts_at_zero(self):
        assert SlottedClock().now == 0

    def test_tick(self):
        clock = SlottedClock()
        assert clock.tick() == 1
        assert clock.tick(5) == 6
        assert clock.now == 6

    def test_advance_to(self):
        clock = SlottedClock(3)
        assert clock.advance_to(10) == 10
        with pytest.raises(ValueError):
            clock.advance_to(5)

    def test_reset(self):
        clock = SlottedClock(5)
        clock.reset()
        assert clock.now == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedClock(-1)
        with pytest.raises(ValueError):
            SlottedClock().tick(0)
        with pytest.raises(ValueError):
            SlottedClock().reset(-2)
