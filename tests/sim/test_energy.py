"""Tests for energy accounting."""

import numpy as np
import pytest

from repro.core.tradeoff import EnergyModel
from repro.sim.energy import EnergyLedger, energy_summary


class TestEnergyLedger:
    def test_counters(self):
        ledger = EnergyLedger(4)
        ledger.note_tx(0)
        ledger.note_tx(0)
        ledger.note_failure(0)
        ledger.note_rx(2)
        ledger.note_elapsed(100)
        assert ledger.total_tx == 2
        assert ledger.total_failures == 1
        assert ledger.total_rx == 1
        assert ledger.elapsed_slots == 100
        assert ledger.failure_ratio() == pytest.approx(0.5)

    def test_empty_failure_ratio(self):
        assert EnergyLedger(2).failure_ratio() == 0.0

    def test_validate_catches_inconsistency(self):
        ledger = EnergyLedger(2)
        ledger.note_failure(1)  # failure without attempt
        with pytest.raises(AssertionError):
            ledger.validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyLedger(0)
        with pytest.raises(ValueError):
            EnergyLedger(2).note_elapsed(-1)


class TestEnergySummary:
    def test_components_add_up(self):
        ledger = EnergyLedger(10)
        for _ in range(20):
            ledger.note_tx(1)
        ledger.note_elapsed(1000)
        summary = energy_summary(ledger, duty_ratio=0.05)
        assert summary["total_energy"] == pytest.approx(
            summary["duty_energy"] + summary["tx_energy"]
        )
        assert summary["per_node_energy"] == pytest.approx(
            summary["total_energy"] / 10
        )

    def test_duty_energy_scales_with_ratio(self):
        ledger = EnergyLedger(5)
        ledger.note_elapsed(1000)
        model = EnergyModel(sleep_power=0.0)
        low = energy_summary(ledger, 0.05, model)
        high = energy_summary(ledger, 0.10, model)
        assert high["duty_energy"] == pytest.approx(2 * low["duty_energy"])

    def test_wasted_energy_tracks_failures(self):
        ledger = EnergyLedger(3)
        ledger.note_tx(0)
        ledger.note_tx(0)
        ledger.note_failure(0)
        ledger.note_elapsed(10)
        summary = energy_summary(ledger, 0.5)
        assert summary["wasted_tx_energy"] == pytest.approx(
            summary["tx_energy"] / 2
        )

    def test_validation(self):
        ledger = EnergyLedger(2)
        with pytest.raises(ValueError):
            energy_summary(ledger, 0.0)
