"""Tests for the flooding simulation engine."""

import numpy as np
import pytest

from repro.net.generators import line_topology, star_topology
from repro.net.packet import FloodWorkload
from repro.net.radio import RadioModel, Transmission
from repro.net.schedule import ScheduleTable
from repro.protocols.base import FloodingProtocol
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood, run_single_packet_floods
from repro.sim.events import EventKind


def lossless_config(**kwargs):
    kwargs.setdefault("radio", RadioModel(lossless=True))
    kwargs.setdefault("coverage_target", 1.0)
    return SimConfig(**kwargs)


def run_line(protocol=None, n_sensors=4, period=5, n_packets=1, seed=0,
             config=None, **flood_kwargs):
    topo = line_topology(n_sensors, prr=1.0)
    rng = np.random.default_rng(seed)
    schedules = ScheduleTable.random(topo.n_nodes, period, rng)
    workload = FloodWorkload(n_packets)
    protocol = protocol or OptOracle()
    config = config or lossless_config(radio=opt_radio_model(lossless=True))
    result = run_flood(
        topo, schedules, workload, protocol, np.random.default_rng(seed + 1),
        config, **flood_kwargs,
    )
    return result, topo, schedules


class TestBasicFlood:
    def test_single_packet_completes_on_line(self):
        result, *_ = run_line()
        assert result.completed
        assert result.metrics.delays.all_completed
        assert result.has.all()

    def test_delay_at_least_hop_count(self):
        # 4 hops minimum on the chain, one slot each.
        result, *_ = run_line()
        assert result.metrics.average_delay() >= 4

    def test_delay_bounded_by_hops_times_period(self):
        # Lossless, no contention: each hop waits at most one period.
        result, *_ = run_line(period=6)
        assert result.metrics.delays.makespan() <= 4 * 6 + 6

    def test_multi_packet_fcfs_completion(self):
        result, *_ = run_line(n_packets=3)
        assert result.completed
        delays = result.metrics.delays
        # First transmissions are serialized at the source in order.
        assert np.all(np.diff(delays.first_tx) > 0)

    def test_sleep_latency_respected(self):
        # Receivers only ever gain packets at their active slots.
        result, topo, schedules = run_line(n_packets=2)
        arrivals = result.arrival
        for p in range(2):
            for v in range(1, topo.n_nodes):
                t = int(arrivals[p, v])
                assert t >= 0
                assert schedules.is_active(v, t)

    def test_event_log(self):
        result, *_ = run_line(config=SimConfig(
            radio=opt_radio_model(lossless=True), coverage_target=1.0,
            track_events=True,
        ))
        log = result.events
        assert log is not None
        assert log.count(EventKind.INJECT) == 1
        assert log.count(EventKind.DELIVER) == 4
        assert log.count(EventKind.TX) >= 4
        assert log.count(EventKind.COMPLETE) == 1

    def test_events_disabled_by_default(self):
        result, *_ = run_line()
        assert result.events is None


class TestHorizon:
    def test_too_short_horizon_reports_incomplete(self):
        # A 2-slot horizon cannot finish a 4-hop flood.
        topo = line_topology(4, prr=1.0)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(5, 5, rng)
        result = run_flood(
            topo, schedules, FloodWorkload(1), OptOracle(), rng,
            SimConfig(coverage_target=1.0, max_slots=2,
                      radio=opt_radio_model(lossless=True)),
        )
        assert not result.completed
        assert result.metrics.delays.completed[0] == -1

    def test_coverage_target_excludes_unreachable(self):
        # With the default reachability-aware accounting, the island does
        # not block completion.
        import numpy as np
        from repro.net.topology import Topology

        mat = np.zeros((4, 4))
        mat[0, 1] = mat[1, 0] = 1.0
        mat[2, 3] = mat[3, 2] = 1.0
        topo = Topology(mat)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(4, 5, rng)
        result = run_flood(
            topo, schedules, FloodWorkload(1), OptOracle(), rng,
            SimConfig(coverage_target=1.0, max_slots=500,
                      radio=opt_radio_model(lossless=True)),
        )
        # Node 1 is the only reachable sensor -> flood completes on it.
        assert result.completed


class TestValidationOfProtocols:
    class BadTwoTx(FloodingProtocol):
        name = "bad-two-tx"

        def propose(self, t, awake, view):
            if awake.size and view.holds(0, 0):
                r = int(awake[0])
                if r != 0:
                    return [Transmission(0, r, 0), Transmission(0, r, 0)]
            return []

    class BadUnheld(FloodingProtocol):
        name = "bad-unheld"

        def propose(self, t, awake, view):
            # Sensor 1 "forwards" a packet it never received.
            for r in awake.tolist():
                if r not in (0, 1) and not view.holds(1, 0):
                    return [Transmission(1, r, 0)]
            return []

    class BadSleeping(FloodingProtocol):
        name = "bad-sleeping"

        def propose(self, t, awake, view):
            if view.holds(0, 0):
                sleeping = [v for v in range(1, view.n_nodes)
                            if v not in set(awake.tolist())]
                if sleeping:
                    return [Transmission(0, sleeping[0], 0)]
            return []

    def _run_with(self, protocol):
        topo = star_topology(3, prr=1.0)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable(period=4, offsets=[0, 1, 2, 3])
        return run_flood(
            topo, schedules, FloodWorkload(8), protocol, rng,
            SimConfig(max_slots=50),
        )

    def test_two_tx_rejected(self):
        with pytest.raises(ValueError, match="two transmissions"):
            self._run_with(self.BadTwoTx())

    def test_unheld_packet_rejected(self):
        with pytest.raises(ValueError, match="does not hold"):
            self._run_with(self.BadUnheld())

    def test_sleeping_receiver_rejected(self):
        with pytest.raises(ValueError, match="sleeping"):
            self._run_with(self.BadSleeping())


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a, *_ = run_line(n_packets=3, seed=5)
        b, *_ = run_line(n_packets=3, seed=5)
        assert np.array_equal(a.arrival, b.arrival)
        assert a.metrics.tx_attempts == b.metrics.tx_attempts

    def test_different_seed_differs(self):
        a, *_ = run_line(n_packets=3, seed=5)
        b, *_ = run_line(n_packets=3, seed=6)
        assert not np.array_equal(a.arrival, b.arrival)


class TestTransmissionDelayProbes:
    def test_probe_shape_and_positivity(self):
        topo = line_topology(3, prr=1.0)
        rng = np.random.default_rng(1)
        schedules = ScheduleTable.random(4, 5, rng)
        probes = run_single_packet_floods(
            topo, schedules, FloodWorkload(10), OptOracle, rng,
            SimConfig(radio=opt_radio_model(lossless=True)),
            n_probes=3,
        )
        assert probes.shape == (10,)
        assert np.all(probes > 0)
        # Cycled probes repeat with period 3.
        assert np.array_equal(probes[:3], probes[3:6])

    def test_probe_validation(self):
        topo = line_topology(3, prr=1.0)
        rng = np.random.default_rng(1)
        schedules = ScheduleTable.random(4, 5, rng)
        with pytest.raises(ValueError):
            run_single_packet_floods(
                topo, schedules, FloodWorkload(2), OptOracle, rng,
                n_probes=5,
            )


class TestConfigValidation:
    def test_bad_coverage(self):
        with pytest.raises(ValueError):
            SimConfig(coverage_target=0.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            SimConfig(max_slots=0)

    def test_schedule_size_mismatch(self):
        topo = line_topology(3, prr=1.0)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(7, 5, rng)
        with pytest.raises(ValueError, match="schedule table"):
            run_flood(topo, schedules, FloodWorkload(1), OptOracle(), rng)
