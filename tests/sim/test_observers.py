"""The observer layer: dispatch rules and user-supplied observers."""

import numpy as np
import pytest

from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.dbao import Dbao
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood
from repro.sim.events import EventKind
from repro.sim.observers import (
    CounterObserver,
    EventLogObserver,
    SimObserver,
    overriders_of,
)


class _TxOnly(SimObserver):
    def __init__(self):
        self.calls = 0

    def on_tx(self, t, batch, outcome, sleep_misses):
        self.calls += 1


class _Recorder(SimObserver):
    """Overrides every hook and tallies the stream it sees."""

    def __init__(self):
        self.injects = []
        self.slots = 0
        self.executed = []
        self.spans = []
        self.tx_attempts = 0
        self.receptions = 0
        self.completes = []
        self.result = None

    def on_slot(self, t, awake):
        self.slots += 1
        self.executed.append(t)

    def on_idle_span(self, t_start, t_end):
        self.spans.append((t_start, t_end))

    def on_inject(self, t, packet):
        self.injects.append((t, packet))

    def on_tx(self, t, batch, outcome, sleep_misses):
        self.tx_attempts += len(batch)

    def on_reception(self, t, rec, is_duplicate):
        self.receptions += 1

    def on_complete(self, t, packet):
        self.completes.append(packet)

    def on_finish(self, result):
        self.result = result


class TestOverridersOf:
    def test_filters_by_overridden_hook(self):
        base, tx_only = SimObserver(), _TxOnly()
        obs = [base, tx_only]
        assert overriders_of(obs, "on_tx") == [tx_only]
        assert overriders_of(obs, "on_reception") == []

    def test_preserves_registration_order(self):
        a, b = _TxOnly(), _TxOnly()
        assert overriders_of([a, b], "on_tx") == [a, b]

    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError, match="unknown observer hook"):
            overriders_of([], "on_teardown")


class TestUserObservers:
    def _run(self, topo, observers, track_events=False):
        rng = np.random.default_rng(5)
        schedules = ScheduleTable.random(topo.n_nodes, 4, np.random.default_rng(6))
        return run_flood(
            topo, schedules, FloodWorkload(3), OptOracle(), rng,
            SimConfig(coverage_target=1.0, radio=opt_radio_model(),
                      track_events=track_events),
            observers=observers,
        )

    def test_recorder_matches_metrics(self, line5):
        rec = _Recorder()
        result = self._run(line5, [rec])
        assert result.completed
        assert rec.result is result
        assert rec.tx_attempts == result.metrics.tx_attempts
        # Executed slots plus fast-forwarded spans tile [0, elapsed)
        # exactly: every slot is either executed (one on_slot call) or
        # inside exactly one idle span, and no per-slot hook ever fires
        # inside a span.
        skipped = sum(b - a for a, b in rec.spans)
        assert rec.slots + skipped == result.metrics.elapsed_slots
        executed = set(rec.executed)
        for a, b in rec.spans:
            assert a < b
            assert not executed.intersection(range(a, b))
        assert [p for _, p in rec.injects] == [0, 1, 2]
        assert sorted(rec.completes) == [0, 1, 2]

    def test_extra_event_log_matches_builtin(self, line5):
        mirror = EventLogObserver()
        result = self._run(line5, [mirror], track_events=True)
        assert list(mirror.log) == list(result.events)

    def test_counter_observer_standalone(self, line5):
        extra = CounterObserver()
        result = self._run(line5, [extra])
        m = result.metrics
        assert extra.counters.tx_attempts == m.tx_attempts
        assert extra.counters.tx_failures == m.tx_failures
        assert extra.counters.duplicates == m.duplicates

    def test_observers_see_dbao_collision_stream(self, small_rgg):
        # A contention-prone run: user observers receive the same event
        # stream the built-in log records, collisions included.
        mirror = EventLogObserver()
        rng = np.random.default_rng(9)
        schedules = ScheduleTable.random(
            small_rgg.n_nodes, 10, np.random.default_rng(10))
        result = run_flood(
            small_rgg, schedules, FloodWorkload(2), Dbao(), rng,
            SimConfig(max_slots=4000, track_events=True),
            observers=[mirror],
        )
        assert list(mirror.log) == list(result.events)
        assert mirror.log.count(EventKind.TX) == result.metrics.tx_attempts
