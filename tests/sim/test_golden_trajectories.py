"""Golden-trajectory pins for the simulation engine.

These tests freeze the *exact* trajectories of small seeded floods — per
packet delays, every aggregate counter, per-node energy checksums, and a
content hash of the arrival matrix — across all registered protocols and
the engine's optional code paths (skew, bursty dynamics, event tracking,
probe floods).

They are the safety net for engine refactors: any change that alters RNG
consumption order, channel resolution, or bookkeeping semantics trips
them immediately. A refactor that keeps them green is trajectory-
preserving and does NOT need an ``ENGINE_VERSION`` bump; a deliberate
semantic change must bump the version and regenerate the pins:

    PYTHONPATH=src python tests/sim/test_golden_trajectories.py

prints a fresh ``GOLDEN`` dict to paste below.
"""

import hashlib

import numpy as np
import pytest

from repro.experiments.skew import JitteredSchedules
from repro.net.dynamics import GilbertElliott
from repro.net.generators import random_geometric_topology
from repro.net.packet import FloodWorkload
from repro.net.radio import RadioModel
from repro.net.schedule import ScheduleTable
from repro.protocols import available_protocols, make_protocol
from repro.protocols.opt import opt_radio_model
from repro.sim.batch import run_flood_batch
from repro.sim.energy import energy_summary
from repro.sim.engine import SimConfig, run_flood
from repro.sim.events import EventKind

M = 3
PERIOD = 5
MAX_SLOTS = 600


def _substrate():
    rng = np.random.default_rng(7)
    topo = random_geometric_topology(25, area_m=180.0, rng=rng)
    schedules = ScheduleTable.random(topo.n_nodes, PERIOD, np.random.default_rng(8))
    return topo, schedules


def _config(protocol: str, **kwargs) -> SimConfig:
    if protocol == "opt":
        kwargs.setdefault("radio", opt_radio_model())
    elif protocol == "crosslayer":
        kwargs.setdefault("radio", RadioModel(overhearing=True))
    kwargs.setdefault("max_slots", MAX_SLOTS)
    return SimConfig(**kwargs)


def _flood(protocol: str, *, track_events=False, probes=False, dynamics=None,
           skew=False):
    topo, schedules = _substrate()
    true_schedules = (
        JitteredSchedules(schedules, 0.3, seed=99) if skew else None
    )
    dyn = GilbertElliott(topo, rng=np.random.default_rng(123)) if dynamics else None
    return run_flood(
        topo,
        schedules,
        FloodWorkload(M),
        make_protocol(protocol),
        np.random.default_rng(42),
        _config(protocol, track_events=track_events),
        measure_transmission_delay=probes,
        dynamics=dyn,
        true_schedules=true_schedules,
    )


def _checksum(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def _observe(result) -> dict:
    m = result.metrics
    ledger = result.ledger
    n = ledger.n_nodes
    weights = np.arange(1, n + 1, dtype=np.int64)
    obs = {
        "completed": bool(result.completed),
        "delays": m.delays.total_delay().tolist(),
        "first_tx": m.delays.first_tx.tolist(),
        "completed_at": m.delays.completed.tolist(),
        "tx_attempts": m.tx_attempts,
        "tx_failures": m.tx_failures,
        "collisions": m.collisions,
        "duplicates": m.duplicates,
        "overhears": m.overhears,
        "sleep_misses": m.sleep_misses,
        "elapsed": m.elapsed_slots,
        "coverage": [round(c, 10) for c in m.coverage_per_packet.tolist()],
        "arrival_sha": _checksum(result.arrival),
        # Position-weighted ledger checksums catch any per-node
        # redistribution that sum-only pins would miss.
        "ledger_tx": [int(ledger.tx_attempts.sum()),
                      int(ledger.tx_attempts @ weights)],
        "ledger_failures": [int(ledger.tx_failures.sum()),
                            int(ledger.tx_failures @ weights)],
        "ledger_rx": [int(ledger.rx_successes.sum()),
                      int(ledger.rx_successes @ weights)],
        "energy_total": round(
            energy_summary(ledger, 1.0 / PERIOD)["total_energy"], 6
        ),
    }
    if result.events is not None:
        obs["event_counts"] = {
            kind.value: result.events.count(kind) for kind in EventKind
        }
        obs["n_events"] = len(result.events)
    if result.metrics.transmission_delay is not None:
        obs["transmission_delay"] = result.metrics.transmission_delay.tolist()
    return obs


SCENARIOS = {
    "opt": dict(protocol="opt"),
    "dbao": dict(protocol="dbao"),
    "of": dict(protocol="of"),
    "naive": dict(protocol="naive"),
    "dca": dict(protocol="dca"),
    "flash": dict(protocol="flash"),
    "crosslayer": dict(protocol="crosslayer"),
    "dbao-skew": dict(protocol="dbao", skew=True),
    "dbao-bursty": dict(protocol="dbao", dynamics=True),
    "opt-events": dict(protocol="opt", track_events=True),
    "of-probes": dict(protocol="of", probes=True),
}

# Generated against the seed engine (pre-refactor) via the __main__ helper.
GOLDEN = {'crosslayer': {'arrival_sha': '412193f653f56f5d',
                'collisions': 6,
                'completed': True,
                'completed_at': [18, 30, 48],
                'coverage': [1.0, 1.0, 1.0],
                'delays': [19, 23, 36],
                'duplicates': 35,
                'elapsed': 49,
                'energy_total': 479.8,
                'first_tx': [0, 8, 13],
                'ledger_failures': [8, 117],
                'ledger_rx': [72, 972],
                'ledger_tx': [90, 1271],
                'overhears': 25,
                'sleep_misses': 0,
                'tx_attempts': 90,
                'tx_failures': 8},
 'dbao': {'arrival_sha': '354d15be16837900',
          'collisions': 10,
          'completed': True,
          'completed_at': [38, 70, 75],
          'coverage': [1.0, 1.0, 1.0],
          'delays': [39, 63, 63],
          'duplicates': 39,
          'elapsed': 76,
          'energy_total': 722.7,
          'first_tx': [0, 8, 13],
          'ledger_failures': [20, 323],
          'ledger_rx': [72, 972],
          'ledger_tx': [131, 1861],
          'overhears': 0,
          'sleep_misses': 0,
          'tx_attempts': 131,
          'tx_failures': 20},
 'dbao-bursty': {'arrival_sha': '5c2f467119a72495',
                 'collisions': 7,
                 'completed': True,
                 'completed_at': [53, 61, 97],
                 'coverage': [1.0, 1.0, 1.0],
                 'delays': [54, 54, 85],
                 'duplicates': 38,
                 'elapsed': 98,
                 'energy_total': 942.1,
                 'first_tx': [0, 8, 13],
                 'ledger_failures': [63, 987],
                 'ledger_rx': [72, 972],
                 'ledger_tx': [173, 2517],
                 'overhears': 0,
                 'sleep_misses': 0,
                 'tx_attempts': 173,
                 'tx_failures': 63},
 'dbao-skew': {'arrival_sha': '5f3ab6492dd8fb0b',
               'collisions': 10,
               'completed': True,
               'completed_at': [113, 118, 123],
               'coverage': [1.0, 1.0, 1.0],
               'delays': [114, 111, 111],
               'duplicates': 40,
               'elapsed': 124,
               'energy_total': 1122.3,
               'first_tx': [0, 8, 13],
               'ledger_failures': [79, 1076],
               'ledger_rx': [72, 972],
               'ledger_tx': [191, 2637],
               'overhears': 0,
               'sleep_misses': 55,
               'tx_attempts': 191,
               'tx_failures': 79},
 'dca': {'arrival_sha': '5f25f99bd1046fc0',
         'collisions': 0,
         'completed': True,
         'completed_at': [201, 206, 211],
         'coverage': [1.0, 1.0, 1.0],
         'delays': [202, 202, 202],
         'duplicates': 0,
         'elapsed': 212,
         'energy_total': 1382.4,
         'first_tx': [0, 5, 10],
         'ledger_failures': [40, 161],
         'ledger_rx': [72, 972],
         'ledger_tx': [112, 749],
         'overhears': 0,
         'sleep_misses': 0,
         'tx_attempts': 112,
         'tx_failures': 40},
 'flash': {'arrival_sha': '52d2543d9d076245',
           'collisions': 2092,
           'completed': False,
           'completed_at': [-1, -1, -1],
           'coverage': [0.9166666667, 0.8333333333, 0.8333333333],
           'delays': [-1, -1, -1],
           'duplicates': 72,
           'elapsed': 600,
           'energy_total': 11412.5,
           'first_tx': [0, 5, 10],
           'ledger_failures': [3183, 39386],
           'ledger_rx': [62, 811],
           'ledger_tx': [3317, 41040],
           'overhears': 0,
           'sleep_misses': 0,
           'tx_attempts': 3317,
           'tx_failures': 3183},
 'naive': {'arrival_sha': '49aecb822125df6c',
           'collisions': 649,
           'completed': True,
           'completed_at': [163, 188, 496],
           'coverage': [1.0, 1.0, 1.0],
           'delays': [159, 174, 417],
           'duplicates': 220,
           'elapsed': 497,
           'energy_total': 5789.4,
           'first_tx': [5, 15, 80],
           'ledger_failures': [990, 12095],
           'ledger_rx': [72, 972],
           'ledger_tx': [1282, 16124],
           'overhears': 0,
           'sleep_misses': 0,
           'tx_attempts': 1282,
           'tx_failures': 990},
 'of': {'arrival_sha': '446ba340b0f282fc',
        'collisions': 1,
        'completed': True,
        'completed_at': [109, 114, 119],
        'coverage': [1.0, 1.0, 1.0],
        'delays': [110, 110, 110],
        'duplicates': 6,
        'elapsed': 120,
        'energy_total': 831.5,
        'first_tx': [0, 5, 10],
        'ledger_failures': [5, 40],
        'ledger_rx': [72, 972],
        'ledger_tx': [83, 841],
        'overhears': 0,
        'sleep_misses': 0,
        'tx_attempts': 83,
        'tx_failures': 5},
 'of-probes': {'arrival_sha': '446ba340b0f282fc',
               'collisions': 1,
               'completed': True,
               'completed_at': [109, 114, 119],
               'coverage': [1.0, 1.0, 1.0],
               'delays': [110, 110, 110],
               'duplicates': 6,
               'elapsed': 120,
               'energy_total': 831.5,
               'first_tx': [0, 5, 10],
               'ledger_failures': [5, 40],
               'ledger_rx': [72, 972],
               'ledger_tx': [83, 841],
               'overhears': 0,
               'sleep_misses': 0,
               'transmission_delay': [50, 40, 50],
               'tx_attempts': 83,
               'tx_failures': 5},
 'opt': {'arrival_sha': '26659e4992609e87',
         'collisions': 0,
         'completed': True,
         'completed_at': [27, 38, 47],
         'coverage': [1.0, 1.0, 1.0],
         'delays': [25, 26, 25],
         'duplicates': 0,
         'elapsed': 48,
         'energy_total': 434.6,
         'first_tx': [3, 13, 23],
         'ledger_failures': [2, 44],
         'ledger_rx': [72, 972],
         'ledger_tx': [74, 1046],
         'overhears': 0,
         'sleep_misses': 0,
         'tx_attempts': 74,
         'tx_failures': 2},
 'opt-events': {'arrival_sha': '26659e4992609e87',
                'collisions': 0,
                'completed': True,
                'completed_at': [27, 38, 47],
                'coverage': [1.0, 1.0, 1.0],
                'delays': [25, 26, 25],
                'duplicates': 0,
                'elapsed': 48,
                'energy_total': 434.6,
                'event_counts': {'collision': 0,
                                 'complete': 3,
                                 'deliver': 72,
                                 'duplicate': 0,
                                 'inject': 3,
                                 'loss': 0,
                                 'overhear': 0,
                                 'tx': 74},
                'first_tx': [3, 13, 23],
                'ledger_failures': [2, 44],
                'ledger_rx': [72, 972],
                'ledger_tx': [74, 1046],
                'n_events': 152,
                'overhears': 0,
                'sleep_misses': 0,
                'tx_attempts': 74,
                'tx_failures': 2}}


def test_all_registered_protocols_are_pinned():
    pinned = {spec["protocol"] for spec in SCENARIOS.values()}
    assert pinned == set(available_protocols())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trajectory(name):
    spec = dict(SCENARIOS[name])
    protocol = spec.pop("protocol")
    observed = _observe(_flood(protocol, **spec))
    assert name in GOLDEN, f"no golden pin for scenario {name!r}"
    expected = GOLDEN[name]
    # Compare key by key for a readable diff on failure.
    assert set(observed) == set(expected)
    for key in sorted(expected):
        assert observed[key] == expected[key], (
            f"{name}: {key} drifted\n  expected {expected[key]!r}\n"
            f"  observed {observed[key]!r}"
        )


@pytest.mark.parametrize("rep_index", [0, 2])
@pytest.mark.parametrize("name", ["opt", "dbao", "dbao-bursty"])
def test_golden_trajectory_extracted_from_batch(name, rep_index):
    """A replication extracted from an (R, ...) batch matches its serial
    golden pin bit for bit, regardless of its position in the batch.

    This is the acceptance gate for the replication axis: the batched
    engine is a pure throughput device, and decoy replications seeded
    differently around the pinned one must not perturb its trajectory.
    """
    spec = dict(SCENARIOS[name])
    protocol = spec.pop("protocol")
    bursty = spec.pop("dynamics", False)
    assert not spec, "batch pins only cover plain/bursty floods"
    topo, schedules = _substrate()
    n_reps = 3

    def _channel(rep):
        return np.random.default_rng(42 if rep == rep_index else 1000 + rep)

    def _dyn(rep):
        seed = 123 if rep == rep_index else 2000 + rep
        return GilbertElliott(topo, rng=np.random.default_rng(seed))

    results = run_flood_batch(
        topo,
        [schedules] * n_reps,
        FloodWorkload(M),
        make_protocol(protocol),
        [_channel(rep) for rep in range(n_reps)],
        _config(protocol),
        dynamics_list=[_dyn(rep) for rep in range(n_reps)] if bursty else None,
    )
    observed = _observe(results[rep_index])
    expected = GOLDEN[name]
    assert set(observed) == set(expected)
    for key in sorted(expected):
        assert observed[key] == expected[key], (
            f"{name}[rep {rep_index}]: {key} drifted\n"
            f"  expected {expected[key]!r}\n  observed {observed[key]!r}"
        )


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    import pprint

    fresh = {}
    for name in sorted(SCENARIOS):
        spec = dict(SCENARIOS[name])
        fresh[name] = _observe(_flood(spec.pop("protocol"), **spec))
    print("GOLDEN =", pprint.pformat(fresh, width=76, sort_dicts=True))
