"""Batch <-> serial equivalence across every registered protocol.

The replication axis is a pure throughput device: a replication
extracted from a :func:`run_replication_chunk` batch must be
**bit-identical** to the same replication run alone through
:func:`run_replication` — same possession matrices, arrival slots,
counters, energy ledgers and completion flags — for every protocol
(batched engine where the protocol supports it, serial fallback
otherwise), with fast-forward on and off, on static and bursty links.
"""

import numpy as np
import pytest

from repro.net.generators import random_geometric_topology
from repro.protocols.base import available_protocols
from repro.scenario import Scenario
from repro.sim.runner import (
    run_experiments,
    run_replication,
    run_replication_chunk,
    run_replication_stack,
    scenario_rep_batchable,
    scenario_stack_key,
)

N_REPS = 3

#: Protocols whose proposal path runs batch-native over the replication
#: axis — every paper-era flood; anything non-batchable (e.g. OPT's
#: "any" server policy) must still work through the serial fallback.
BATCH_NATIVE = {"naive", "of", "dca", "flash", "crosslayer", "opt", "dbao"}


@pytest.fixture(scope="module")
def topo():
    return random_geometric_topology(
        30, area_m=180.0, rng=np.random.default_rng(7)
    )


def _scenario(protocol, fast_forward=True, link_model="static",
              duty_ratio=0.1, seed=2011, generation_interval=0):
    return Scenario(
        protocol=protocol,
        duty_ratio=duty_ratio,
        n_packets=3,
        seed=seed,
        n_replications=N_REPS,
        generation_interval=generation_interval,
        link_model=link_model,
        sim={"fast_forward": fast_forward, "max_slots": 4000},
    )


def assert_results_identical(a, b):
    """Every field of two FloodResults, compared exactly."""
    ma, mb = a.metrics, b.metrics
    for f in ("tx_attempts", "tx_failures", "collisions", "duplicates",
              "overhears", "elapsed_slots", "sleep_misses"):
        assert getattr(ma, f) == getattr(mb, f), f
    np.testing.assert_array_equal(a.has, b.has)
    np.testing.assert_array_equal(a.arrival, b.arrival)
    np.testing.assert_array_equal(ma.delays.generated, mb.delays.generated)
    np.testing.assert_array_equal(ma.delays.first_tx, mb.delays.first_tx)
    np.testing.assert_array_equal(ma.delays.completed, mb.delays.completed)
    np.testing.assert_array_equal(
        ma.coverage_per_packet, mb.coverage_per_packet
    )
    np.testing.assert_array_equal(a.ledger.tx_attempts, b.ledger.tx_attempts)
    np.testing.assert_array_equal(a.ledger.tx_failures, b.ledger.tx_failures)
    np.testing.assert_array_equal(a.ledger.rx_successes, b.ledger.rx_successes)
    assert a.ledger.elapsed_slots == b.ledger.elapsed_slots
    assert a.completed == b.completed


class TestChunkEquivalence:
    """run_replication_chunk == [run_replication(rep) ...], bit for bit."""

    @pytest.mark.parametrize("protocol", available_protocols())
    @pytest.mark.parametrize("fast_forward", [True, False],
                             ids=["ff", "noff"])
    def test_every_protocol(self, topo, protocol, fast_forward):
        scenario = _scenario(protocol, fast_forward=fast_forward)
        serial = [run_replication(topo, scenario, rep)
                  for rep in range(N_REPS)]
        chunked = run_replication_chunk(topo, scenario, 0, N_REPS)
        assert len(chunked) == N_REPS
        for s, c in zip(serial, chunked):
            assert_results_identical(s, c)

    @pytest.mark.parametrize("protocol", sorted(BATCH_NATIVE))
    def test_batch_native_under_bursty_links(self, topo, protocol):
        scenario = _scenario(protocol, link_model="gilbert_elliott")
        serial = [run_replication(topo, scenario, rep)
                  for rep in range(N_REPS)]
        chunked = run_replication_chunk(topo, scenario, 0, N_REPS)
        for s, c in zip(serial, chunked):
            assert_results_identical(s, c)

    def test_partial_chunk_alignment(self, topo):
        # A chunk starting mid-sequence covers exactly its replications.
        scenario = _scenario("dbao")
        serial = [run_replication(topo, scenario, rep) for rep in (1, 2)]
        chunked = run_replication_chunk(topo, scenario, 1, 2)
        for s, c in zip(serial, chunked):
            assert_results_identical(s, c)

    def test_batchability_gate(self, topo):
        assert scenario_rep_batchable(_scenario("opt"))
        assert scenario_rep_batchable(_scenario("dbao"))
        # Probe floods, multi-slot wake and clock skew force the serial
        # fallback; the event log does too.
        assert not scenario_rep_batchable(
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     measure_transmission_delay=True)
        )
        assert not scenario_rep_batchable(
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     wake_slots=2)
        )
        assert not scenario_rep_batchable(
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     schedule_jitter=0.3)
        )
        assert not scenario_rep_batchable(
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     sim={"track_events": True})
        )

    def test_invalid_chunk_rejected(self, topo):
        with pytest.raises(ValueError):
            run_replication_chunk(topo, _scenario("dbao"), 0, 0)


class TestRunnerChunking:
    """reps_per_task is execution policy: summaries never change."""

    @pytest.mark.parametrize("reps_per_task", [None, 1, 2, N_REPS, 100])
    def test_run_experiments_any_width(self, topo, reps_per_task):
        scenario = _scenario("dbao")
        (base,) = run_experiments(topo, [scenario], reps_per_task=1)
        (summary,) = run_experiments(
            topo, [scenario], reps_per_task=reps_per_task
        )
        assert summary.n_runs == N_REPS
        for s, c in zip(base.results, summary.results):
            assert_results_identical(s, c)

    def test_mixed_grid_regroups_in_rep_order(self, topo):
        # A batchable and a fallback scenario in one dispatch: results
        # regroup per spec in ascending replication order either way.
        specs = [_scenario("dbao"), _scenario("of")]
        base = run_experiments(topo, specs, reps_per_task=1)
        chunked = run_experiments(topo, specs, reps_per_task=2)
        for b, c in zip(base, chunked):
            assert b.n_runs == c.n_runs == N_REPS
            for s, r in zip(b.results, c.results):
                assert_results_identical(s, r)

    def test_invalid_width_rejected(self, topo):
        with pytest.raises(ValueError):
            run_experiments(topo, [_scenario("dbao")], reps_per_task=0)

    def test_executor_meters_batch_widths(self, topo):
        from repro.exec import SerialExecutor

        executor = SerialExecutor()
        run_experiments(topo, [_scenario("dbao")], executor=executor,
                        reps_per_task=2)
        stats = executor.stats
        # 3 reps at width 2 -> one 2-wide batched task plus a single.
        assert stats.rep_batches == 1
        assert stats.batched_reps == 2
        assert stats.max_batch_width == 2
        assert "batched task" in str(stats)

    def test_auto_policy_chunks_batchable_only(self, topo):
        from repro.exec import SerialExecutor

        # Every paper-era flood is batch-native now: OF chunks too.
        executor = SerialExecutor()
        run_experiments(topo, [_scenario("of")], executor=executor)
        assert executor.stats.rep_batches == 1  # one 3-wide chunk
        assert executor.stats.batched_reps == N_REPS
        assert executor.stats.tasks == 1

        # The event log still forces the per-replication fallback — and
        # the stats meter the fallback replications as serial.
        executor = SerialExecutor()
        tracked = Scenario(
            protocol="of", duty_ratio=0.1, n_packets=3, seed=2011,
            n_replications=N_REPS,
            sim={"track_events": True, "max_slots": 4000},
        )
        run_experiments(topo, [tracked], executor=executor)
        assert executor.stats.rep_batches == 0
        assert executor.stats.serial_reps == N_REPS
        assert executor.stats.tasks == N_REPS
        assert "batch coverage" in str(executor.stats)


class TestCrossCellStacking:
    """Cross-cell stacks: cells extract bit-identical to standalone runs."""

    def test_stack_key_gates(self):
        # Duty ratio, seed and generation interval are per-replication
        # axes: they share a key. Protocol or engine config changes (and
        # non-batchable scenarios) split or drop the key.
        base = _scenario("of")
        assert scenario_stack_key(base) is not None
        assert scenario_stack_key(_scenario("of", duty_ratio=0.05,
                                            seed=7, generation_interval=4)) \
            == scenario_stack_key(base)
        assert scenario_stack_key(_scenario("dbao")) \
            != scenario_stack_key(base)
        assert scenario_stack_key(_scenario("of", fast_forward=False)) \
            != scenario_stack_key(base)
        tracked = Scenario(protocol="of", duty_ratio=0.1, n_packets=3,
                           sim={"track_events": True})
        assert scenario_stack_key(tracked) is None

    def test_stack_matches_standalone_chunks(self, topo):
        # One engine invocation over a whole duty column (plus a seed
        # and a workload variant): every extracted cell must equal its
        # standalone chunk bit for bit.
        cells = [
            (_scenario("of", duty_ratio=0.05), 0, N_REPS),
            (_scenario("of", duty_ratio=0.1, seed=7), 1, 2),
            (_scenario("of", duty_ratio=0.2, generation_interval=4),
             0, N_REPS),
        ]
        stacked = run_replication_stack(topo, cells)
        assert [len(r) for r in stacked] == [c[2] for c in cells]
        for (spec, start, count), cell_results in zip(cells, stacked):
            standalone = run_replication_chunk(topo, spec, start, count)
            for s, c in zip(standalone, cell_results):
                assert_results_identical(s, c)

    def test_run_experiments_stacks_column(self, topo):
        from repro.exec import SerialExecutor

        specs = [_scenario("of", duty_ratio=d) for d in (0.05, 0.1, 0.2)]
        base = run_experiments(topo, specs, reps_per_task=1)
        executor = SerialExecutor()
        column = run_experiments(topo, specs, executor=executor)
        # The whole column rides in ONE stacked engine invocation.
        assert executor.stats.tasks == 1
        assert executor.stats.batched_reps == 3 * N_REPS
        for b, c in zip(base, column):
            assert b.n_runs == c.n_runs == N_REPS
            for s, r in zip(b.results, c.results):
                assert_results_identical(s, r)
