"""The Fig. 9 probe floods must run on the parent flood's channel.

Regression tests for a dropped-argument bug: ``run_single_packet_floods``
used to ignore ``dynamics`` and ``true_schedules``, so the decomposition's
"pure transmission delay" probes measured a clean static channel even
when the parent flood ran on bursty links or skewed clocks.
"""

import numpy as np
import pytest

from repro.net.dynamics import GilbertElliott
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood, run_single_packet_floods


def _config(max_slots=300):
    return SimConfig(coverage_target=1.0, max_slots=max_slots,
                     radio=opt_radio_model())


def _blackout(topo):
    """Gilbert-Elliott state with every link permanently dead."""
    ge = GilbertElliott(
        topo,
        p_good_to_bad=1.0,
        p_bad_to_good=1e-12,
        bad_factor=0.0,
        rng=np.random.default_rng(7),
        start_stationary=False,
    )
    # Force all links BAD immediately; with bad_factor=0 and a
    # negligible recovery probability nothing can ever be delivered.
    ge.step()
    assert ge.bad_fraction() == 1.0
    return ge


class TestProbeChannelThreading:
    def test_probes_without_dynamics_complete(self, line5):
        schedules = ScheduleTable(4, [0, 1, 2, 3, 0])
        probes = run_single_packet_floods(
            line5, schedules, FloodWorkload(3), OptOracle,
            np.random.default_rng(0), _config(),
        )
        assert (probes >= 0).all()

    def test_probes_see_parent_dynamics(self, line5):
        # A permanently-dead channel must also be dead for the probes;
        # the old code dropped `dynamics` and the probes completed.
        schedules = ScheduleTable(4, [0, 1, 2, 3, 0])
        probes = run_single_packet_floods(
            line5, schedules, FloodWorkload(3), OptOracle,
            np.random.default_rng(0), _config(),
            dynamics=_blackout(line5),
        )
        assert (probes < 0).all()

    def test_probes_see_true_schedules(self, line5):
        # Believed and true schedules are phase-disjoint: every
        # transmission targets a dormant radio, so probes sharing the
        # parent's skew can never deliver. The old code dropped
        # `true_schedules` and the probes completed.
        believed = ScheduleTable(4, [0, 0, 0, 0, 0])
        true = ScheduleTable(4, [0, 2, 2, 2, 2])
        probes = run_single_packet_floods(
            line5, believed, FloodWorkload(2), OptOracle,
            np.random.default_rng(0), _config(),
            true_schedules=true,
        )
        assert (probes < 0).all()

    def test_measure_transmission_delay_threads_channel(self, line5):
        # End to end through run_flood: the parent tolerates the skew
        # horizon-wise, and the embedded probes must inherit it too.
        believed = ScheduleTable(4, [0, 0, 0, 0, 0])
        true = ScheduleTable(4, [0, 2, 2, 2, 2])
        result = run_flood(
            line5, believed, FloodWorkload(2), OptOracle(),
            np.random.default_rng(0), _config(),
            measure_transmission_delay=True,
            true_schedules=true,
        )
        assert (result.metrics.transmission_delay < 0).all()
        assert result.metrics.sleep_misses > 0


class TestGilbertElliottFork:
    def test_fork_copies_state_and_is_independent(self, line5):
        ge = GilbertElliott(line5, rng=np.random.default_rng(3))
        clone = ge.fork(np.random.default_rng(4))
        assert clone.bad_fraction() == ge.bad_fraction()
        before = ge.bad_fraction()
        for _ in range(50):
            clone.step()
        assert ge.bad_fraction() == before  # parent state untouched

    def test_fork_consumes_no_draws_at_construction(self, line5):
        # The clone copies state instead of redrawing it, so the stream
        # handed to fork() is untouched until the first step() — forks
        # with equal seeds evolve identically.
        ge = GilbertElliott(line5, rng=np.random.default_rng(11))
        fork_rng = np.random.default_rng(12)
        ge.fork(fork_rng)
        assert fork_rng.random() == np.random.default_rng(12).random()

        c1 = ge.fork(np.random.default_rng(13))
        c2 = ge.fork(np.random.default_rng(13))
        for _ in range(20):
            c1.step()
            c2.step()
        assert np.array_equal(c1._bad, c2._bad)
