"""Additional engine behaviors: spaced generation, config overrides."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.radio import RadioModel
from repro.net.schedule import ScheduleTable
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


class TestSpacedGeneration:
    def test_injection_respects_interval(self, line5):
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(5, 4, rng)
        workload = FloodWorkload(3, generation_interval=40)
        result = run_flood(
            line5, schedules, workload, OptOracle(), rng,
            SimConfig(coverage_target=1.0,
                      radio=opt_radio_model(lossless=True)),
        )
        first_tx = result.metrics.delays.first_tx
        # Packet p cannot be transmitted before its generation slot.
        for p in range(3):
            assert first_tx[p] >= workload.generation_slot(p)

    def test_slow_injection_removes_blocking(self, line5):
        # With a huge generation gap each packet floods alone: delays are
        # flat instead of growing.
        spec = ExperimentSpec(
            protocol="opt", duty_ratio=0.25, n_packets=4, seed=2,
            generation_interval=500, coverage_target=1.0,
        )
        summary = run_experiment(line5, spec)
        delays = summary.per_packet_delay()
        assert np.nanmax(delays) <= np.nanmin(delays) * 3


class TestConfigOverride:
    def test_spec_sim_config_wins(self, line5):
        # A custom SimConfig on the spec overrides the per-protocol default
        # (here: OPT forced onto a colliding channel).
        spec = ExperimentSpec(
            protocol="opt", duty_ratio=0.25, n_packets=2, seed=3,
            sim_config=SimConfig(radio=RadioModel(collisions=True),
                                 coverage_target=1.0),
        )
        summary = run_experiment(line5, spec)
        assert summary.completion_rate() == 1.0

    def test_crosslayer_gets_overhearing_radio(self, small_rgg):
        spec = ExperimentSpec(
            protocol="crosslayer", duty_ratio=0.2, n_packets=2, seed=3,
        )
        summary = run_experiment(small_rgg, spec)
        # Data overhearing produces overheard receptions.
        assert summary.results[0].metrics.overhears > 0

    def test_unicast_protocols_have_no_overhears(self, small_rgg):
        spec = ExperimentSpec(
            protocol="dbao", duty_ratio=0.2, n_packets=2, seed=3,
        )
        summary = run_experiment(small_rgg, spec)
        assert summary.results[0].metrics.overhears == 0
