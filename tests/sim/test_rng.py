"""Tests for reproducible RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams, derive_seed, spawn_generator


class TestDerivation:
    def test_same_name_same_stream(self):
        a = spawn_generator(7, "channel")
        b = spawn_generator(7, "channel")
        assert a.random() == b.random()

    def test_different_names_differ(self):
        a = spawn_generator(7, "channel")
        b = spawn_generator(7, "schedule")
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = spawn_generator(7, "channel")
        b = spawn_generator(8, "channel")
        assert a.random() != b.random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x").spawn_key == derive_seed(1, "x").spawn_key


class TestRngStreams:
    def test_get_caches(self):
        streams = RngStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_creation_order_irrelevant(self):
        s1 = RngStreams(5)
        s2 = RngStreams(5)
        _ = s1.get("first")
        x1 = s1.get("second").random()
        x2 = s2.get("second").random()  # created without touching "first"
        assert x1 == x2

    def test_reset_replays(self):
        streams = RngStreams(3)
        first = streams.get("x").random()
        streams.get("x").random()
        streams.reset(["x"])
        assert streams.get("x").random() == first

    def test_reset_all(self):
        streams = RngStreams(3)
        a0 = streams.get("a").random()
        b0 = streams.get("b").random()
        streams.reset()
        assert streams.get("a").random() == a0
        assert streams.get("b").random() == b0

    def test_fork_independent_but_deterministic(self):
        f1 = RngStreams(9).fork("rep0")
        f2 = RngStreams(9).fork("rep0")
        f3 = RngStreams(9).fork("rep1")
        assert f1.get("x").random() == f2.get("x").random()
        assert f1.seed != f3.seed

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RngStreams("seed")  # type: ignore[arg-type]
