"""Quiescence fast-forward: bit-identical trajectories, on or off.

The compact-time skip (``SimConfig.fast_forward``) is a pure performance
switch: the engine may only jump over slots the protocol has *proved*
quiescent, so every observable of a flood — possession matrix, arrival
slots, per-node energy, every counter — must be byte-for-byte identical
with the skip disabled. These tests pin that equivalence across all
seven registered protocols, with bursty link dynamics and clock skew
layered on, and check that the skip actually engages (a vacuously green
equivalence test would prove nothing).
"""

import numpy as np
import pytest

from repro.experiments.skew import JitteredSchedules
from repro.net.dynamics import GilbertElliott
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.base import available_protocols, make_protocol
from repro.protocols.opt import opt_radio_model
from repro.sim.engine import SimConfig, run_flood
from repro.sim.observers import SimObserver
import repro.protocols  # noqa: F401  (populates the registry)

ALL_PROTOCOLS = available_protocols()


class _SpanTally(SimObserver):
    def __init__(self):
        self.executed = 0
        self.skipped = 0

    def on_slot(self, t, awake):
        self.executed += 1

    def on_idle_span(self, t_start, t_end):
        self.skipped += t_end - t_start


def _flood(topo, protocol_name, *, fast_forward, period=24, n_packets=2,
           dynamics=False, skew=False, observers=()):
    schedules = ScheduleTable.random(
        topo.n_nodes, period, np.random.default_rng(3)
    )
    radio = opt_radio_model() if protocol_name == "opt" else None
    config = SimConfig(
        max_slots=40_000, fast_forward=fast_forward,
        **({"radio": radio} if radio is not None else {}),
    )
    dyn = None
    if dynamics:
        dyn = GilbertElliott(
            topo, p_good_to_bad=0.05, p_bad_to_good=0.2, bad_factor=0.3,
            rng=np.random.default_rng(17),
        )
    true_schedules = (
        JitteredSchedules(schedules, 0.3, 99) if skew else None
    )
    return run_flood(
        topo, schedules, FloodWorkload(n_packets),
        make_protocol(protocol_name), np.random.default_rng(7),
        config, dynamics=dyn, true_schedules=true_schedules,
        observers=list(observers),
    )


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.has, b.has)
    np.testing.assert_array_equal(a.arrival, b.arrival)
    np.testing.assert_array_equal(a.ledger.tx_attempts, b.ledger.tx_attempts)
    np.testing.assert_array_equal(a.ledger.tx_failures, b.ledger.tx_failures)
    np.testing.assert_array_equal(a.ledger.rx_successes, b.ledger.rx_successes)
    ma, mb = a.metrics, b.metrics
    assert ma.elapsed_slots == mb.elapsed_slots
    assert ma.tx_attempts == mb.tx_attempts
    assert ma.tx_failures == mb.tx_failures
    assert ma.collisions == mb.collisions
    assert ma.duplicates == mb.duplicates
    assert ma.overhears == mb.overhears
    assert ma.sleep_misses == mb.sleep_misses
    np.testing.assert_array_equal(ma.delays.completed, mb.delays.completed)
    np.testing.assert_array_equal(ma.delays.first_tx, mb.delays.first_tx)
    assert a.completed == b.completed


class TestBitIdenticalTrajectories:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_plain(self, small_rgg, name):
        tally = _SpanTally()
        on = _flood(small_rgg, name, fast_forward=True, observers=[tally])
        off = _flood(small_rgg, name, fast_forward=False)
        _assert_identical(on, off)
        assert tally.executed + tally.skipped == on.metrics.elapsed_slots

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_with_dynamics_and_skew(self, small_rgg, name):
        # Bursty links exercise GilbertElliott.advance; jittered true
        # schedules exercise the skip when believed and actual wake
        # times disagree (the frontier is over *believed* schedules).
        on = _flood(small_rgg, name, fast_forward=True,
                    dynamics=True, skew=True)
        off = _flood(small_rgg, name, fast_forward=False,
                     dynamics=True, skew=True)
        _assert_identical(on, off)

    def test_skip_engages_in_sparse_regime(self, small_rgg):
        # At 1% duty with one packet, most slots are provably quiescent;
        # the equivalence above would be vacuous if none were skipped.
        tally = _SpanTally()
        on = _flood(small_rgg, "dbao", fast_forward=True, period=100,
                    n_packets=1, observers=[tally])
        assert on.completed
        assert tally.skipped > on.metrics.elapsed_slots // 2
        off_tally = _SpanTally()
        off = _flood(small_rgg, "dbao", fast_forward=False, period=100,
                     n_packets=1, observers=[off_tally])
        _assert_identical(on, off)
        assert off_tally.skipped == 0
        assert off_tally.executed == off.metrics.elapsed_slots


class TestNextActionSlotContract:
    def test_default_is_conservative(self, line5):
        from repro.protocols.base import FloodingProtocol

        class Minimal(FloodingProtocol):
            name = "minimal-test"

            def propose_batch(self, t, awake, view):  # pragma: no cover
                from repro.net.radio import TxBatch
                return TxBatch.empty()

        assert Minimal().next_action_slot(10, np.arange(2), None) == 11

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_bound_is_sound_mid_flood(self, small_rgg, name):
        # Replay a flood slot by slot; whenever the executed slot was
        # idle, the protocol's claimed next action slot must be > t (it
        # may exceed t + 1 only by proving quiescence, which the
        # bit-identity tests above check end to end).
        claims = []

        class Probe(SimObserver):
            def on_idle_span(self, t_start, t_end):
                claims.append((t_start, t_end))

        result = _flood(small_rgg, name, fast_forward=True, period=40,
                        n_packets=1, observers=[Probe()])
        for t_start, t_end in claims:
            assert t_start < t_end <= result.metrics.elapsed_slots
