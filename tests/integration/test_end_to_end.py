"""End-to-end: full public-API journeys a downstream user would take."""

import numpy as np
import pytest

import repro
from repro import (
    ExperimentSpec,
    FloodWorkload,
    MatrixFloodSimulator,
    RngStreams,
    ScheduleTable,
    SimConfig,
    run_experiment,
    run_flood,
)
from repro.net import save_trace, load_trace, synthesize_greenorbs
from repro.net.trace import GreenOrbsConfig
from repro.protocols import make_protocol


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_star_imports_cover_main_objects(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_full_journey_trace_to_delay(self, tmp_path):
        # 1. synthesize a (small) trace, 2. persist it, 3. reload, 4. flood.
        config = GreenOrbsConfig(n_sensors=60, area_m=320.0, n_clusters=3)
        topo = synthesize_greenorbs(seed=5, config=config)
        path = tmp_path / "deployment.npz"
        save_trace(topo, path)
        topo2 = load_trace(path)

        summary = run_experiment(topo2, ExperimentSpec(
            protocol="dbao", duty_ratio=0.1, n_packets=3, seed=5,
        ))
        assert summary.completion_rate() == 1.0
        assert np.isfinite(summary.mean_delay())

    def test_manual_engine_invocation(self, small_rgg):
        # The lower-level API: explicit schedules, protocol, config.
        streams = RngStreams(21)
        schedules = ScheduleTable.random(
            small_rgg.n_nodes, 10, streams.get("schedule")
        )
        protocol = make_protocol("of", opp_quantile=0.7)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(2), protocol,
            streams.get("channel"), SimConfig(track_events=True),
        )
        assert result.completed
        assert len(result.events) > 0
        # Energy ledger is internally consistent.
        result.ledger.validate()
        assert result.ledger.total_tx >= result.ledger.total_failures

    def test_compact_time_analysis_of_simulated_flood(self, line5):
        # Feed a simulated flood's busy slots into the compact timeline.
        from repro.core.compact_time import CompactTimeline
        from repro.protocols.opt import OptOracle, opt_radio_model
        from repro.sim.events import EventKind

        rng = np.random.default_rng(3)
        schedules = ScheduleTable.random(5, 5, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(1), OptOracle(), rng,
            SimConfig(coverage_target=1.0, track_events=True,
                      radio=opt_radio_model(lossless=True)),
        )
        tl = CompactTimeline(result.events.busy_slots())
        # Chain of 4 hops: exactly 4 busy slots, gaps below one period.
        assert len(tl) == 4
        assert np.all(tl.gaps() < 5)

    def test_matrix_flood_public_entry(self):
        result = MatrixFloodSimulator(16).run(4)
        assert result.achieves_lemma3

    def test_registry_and_kwargs(self):
        of = make_protocol("of", opp_quantile=0.4)
        assert of.opp_quantile == 0.4
        assert sorted(repro.available_protocols()) == [
            "crosslayer", "dbao", "dca", "flash", "naive", "of", "opt",
        ]
