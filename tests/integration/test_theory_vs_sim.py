"""Integration: simulated floods must respect the paper's analytic results."""

import numpy as np
import pytest

from repro.analysis.validate import analytic_lower_bound, respects_lower_bound
from repro.core.fdl import fdl_theorem2_bounds
from repro.core.fwl import fwl_reliable
from repro.core.linkloss import recurrence_hitting_time
from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.net.topology import Topology
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


class TestLowerBounds:
    def test_oracle_respects_analytic_bound_on_trace(self, small_rgg):
        # Even the oracle cannot beat the Sec. IV-B recurrence bound.
        duty = 0.1
        bound = analytic_lower_bound(small_rgg, duty)
        summary = run_experiment(small_rgg, ExperimentSpec(
            protocol="opt", duty_ratio=duty, n_packets=1, seed=1,
            n_replications=3,
        ))
        # 99%-coverage can finish slightly before the full-coverage bound.
        assert respects_lower_bound(summary.mean_delay(), bound, tolerance=0.25)

    def test_practical_protocols_above_oracle_bound(self, small_rgg):
        duty = 0.1
        bound = analytic_lower_bound(small_rgg, duty)
        for proto in ("dbao", "of"):
            summary = run_experiment(small_rgg, ExperimentSpec(
                protocol=proto, duty_ratio=duty, n_packets=1, seed=1,
            ))
            assert summary.mean_delay() >= bound * 0.75


class TestCompleteGraphMatchesBranching:
    """On a complete graph with collision-free radio, flooding IS the
    branching process — the cleanest end-to-end check of Lemma 2."""

    def test_single_packet_compact_waitings(self):
        n_sensors = 31
        topo = Topology.complete(n_sensors, prr=1.0)
        rng = np.random.default_rng(0)
        # Every node awake every slot (duty 100%): compact = original.
        schedules = ScheduleTable(period=1, offsets=[0] * (n_sensors + 1))
        result = run_flood(
            topo, schedules, FloodWorkload(1),
            OptOracle(server_policy="any"), rng,
            SimConfig(coverage_target=1.0,
                      radio=opt_radio_model(lossless=True, overhearing=False)),
        )
        # Doubling every slot: ceil(log2(1+N)) slots (Eq. 6).
        makespan = result.metrics.delays.makespan() + 1
        assert makespan == fwl_reliable(n_sensors)

    def test_multi_packet_within_theorem2_band(self):
        n_sensors, M = 15, 6
        topo = Topology.complete(n_sensors, prr=1.0)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable(period=1, offsets=[0] * (n_sensors + 1))
        result = run_flood(
            topo, schedules, FloodWorkload(M),
            OptOracle(server_policy="any"), rng,
            SimConfig(coverage_target=1.0,
                      radio=opt_radio_model(lossless=True, overhearing=False)),
        )
        bounds = fdl_theorem2_bounds(n_sensors, M, period=1)
        makespan = result.metrics.delays.makespan() + 1
        # The engine's oracle drains packets FCFS (roughly M sequential
        # single-packet floods of ~m slots each); Algorithm 1's
        # freshest-first pipeline is what closes the gap to the Theorem 2
        # band. Require the makespan to sit between the analytic lower
        # bound and the non-pipelined ceiling.
        m = fwl_reliable(n_sensors)
        assert bounds.lower <= makespan <= M * (m + 1) + m


class TestDutyCyclePenalty:
    def test_delay_scales_roughly_with_period(self, line5):
        # Theorem 1: FDL ~ T. Halving duty should about double delay.
        delays = {}
        for duty in (0.5, 0.25):
            summary = run_experiment(line5, ExperimentSpec(
                protocol="opt", duty_ratio=duty, n_packets=2, seed=3,
                n_replications=8, coverage_target=1.0,
            ))
            delays[duty] = summary.mean_delay()
        ratio = delays[0.25] / delays[0.5]
        assert 1.2 <= ratio <= 3.0

    def test_loss_magnifies_duty_penalty(self):
        # Sec. IV-B: the k = 2 delay grows faster than the k = 1 delay as
        # the duty cycle shrinks — verified on simulated chains.
        results = {}
        for prr in (1.0, 0.5):
            topo = line_topology(6, prr=prr)
            per_duty = {}
            for duty in (0.25, 0.05):
                summary = run_experiment(topo, ExperimentSpec(
                    protocol="opt", duty_ratio=duty, n_packets=1, seed=5,
                    n_replications=10, coverage_target=1.0,
                ))
                per_duty[duty] = summary.mean_delay()
            results[prr] = per_duty[0.05] / per_duty[0.25]
        assert results[0.5] >= results[1.0] * 0.9  # lossy at least as steep

    def test_recurrence_tracks_simulated_single_packet(self):
        # Homogeneous k-class chain: simulated delay within a small factor
        # of the recurrence prediction.
        prr, duty = 0.5, 0.2
        topo = line_topology(6, prr=prr)
        summary = run_experiment(topo, ExperimentSpec(
            protocol="opt", duty_ratio=duty, n_packets=1, seed=7,
            n_replications=10, coverage_target=1.0,
        ))
        predicted = recurrence_hitting_time(6, 1 / prr, round(1 / duty))
        measured = summary.mean_delay()
        assert predicted * 0.5 <= measured <= predicted * 6
