"""Integration: a sharded run merged back equals the unsharded run.

The tentpole's acceptance criterion, end to end: run a grid as k shards
into k separate cache directories (as k independent processes would),
``merge_store`` them, and the merged store answers the full grid with
summaries bit-identical to the unsharded run — same FloodResult
pickles, same report digest.
"""

import json
import pickle

import pytest

from repro.cli import main
from repro.exec import ResultStore, merge_store, read_manifest
from repro.scenario import Scenario, ScenarioGrid, TopologySpec
from repro.sim.runner import (
    MissingResults,
    load_scenario_summaries,
    run_scenarios,
)


@pytest.fixture(scope="module")
def grid():
    return ScenarioGrid(
        Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=7,
                 n_replications=2,
                 topology=TopologySpec(kind="line",
                                       params={"n_sensors": 8, "prr": 0.9})),
        axes={"protocol": ("opt", "dbao", "of"),
              "duty_ratio": (0.1, 0.2)},
        name="shard-roundtrip",
    )


def flat_pickles(summaries):
    return [pickle.dumps(r) for s in summaries for r in s.results]


class TestShardMergeRoundTrip:
    @pytest.mark.parametrize("k", [2, 3])
    def test_bit_identical_at_run_summary_level(self, grid, tmp_path, k):
        baseline = run_scenarios(grid.scenarios(),
                                 store=ResultStore(tmp_path / "unsharded"))

        shard_dirs = []
        for shard in grid.shards(k):
            d = tmp_path / f"shard{shard.sharding[0]}"
            run_scenarios(shard.scenarios(), store=ResultStore(d))
            shard_dirs.append(d)

        merged_dir = tmp_path / "merged"
        report = merge_store(merged_dir, shard_dirs)
        assert report.copied == len(grid)
        assert report.rejected == 0

        merged = load_scenario_summaries(
            grid.scenarios(), ResultStore(merged_dir)
        )
        assert flat_pickles(merged) == flat_pickles(baseline)
        assert [s.spec for s in merged] == [s.spec for s in baseline]

    def test_missing_shard_is_named_not_guessed(self, grid, tmp_path):
        shard0 = grid.shard(0, 2)
        run_scenarios(shard0.scenarios(),
                      store=ResultStore(tmp_path / "only0"))
        with pytest.raises(MissingResults) as err:
            load_scenario_summaries(grid.scenarios(),
                                    ResultStore(tmp_path / "only0"))
        missing = {s.fingerprint() for _, s in err.value.missing}
        want = {s.fingerprint() for s in grid.shard(1, 2).scenarios()}
        assert missing == want


class TestCliShardPipeline:
    def test_shard_run_merge_report_digest_equal(self, grid, tmp_path,
                                                 capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())

        # Unsharded reference digest.
        ref = tmp_path / "ref.json"
        assert main(["run-scenario", str(grid_file),
                     "--cache-dir", str(tmp_path / "one"),
                     "--summary", str(ref)]) == 0

        for i in range(2):
            assert main(["run-scenario", str(grid_file),
                         "--shard", f"{i}/2",
                         "--cache-dir", str(tmp_path / f"s{i}")]) == 0
        assert main(["store", "merge",
                     "--into", str(tmp_path / "merged"),
                     str(tmp_path / "s0"), str(tmp_path / "s1")]) == 0
        assert main(["store", "verify", str(tmp_path / "merged")]) == 0

        got = tmp_path / "got.json"
        assert main(["report", str(grid_file),
                     "--cache-dir", str(tmp_path / "merged"),
                     "--summary", str(got)]) == 0
        capsys.readouterr()
        assert got.read_bytes() == ref.read_bytes()

    def test_run_stamps_manifest(self, grid, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())
        assert main(["run-scenario", str(grid_file), "--shard", "0/3",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        capsys.readouterr()
        manifest = read_manifest(tmp_path / "c")
        entry = manifest["grids"][grid.grid_fingerprint()]
        assert entry == {"name": "shard-roundtrip", "shards": ["0/3"]}

    def test_report_on_incomplete_store_exits_2(self, grid, tmp_path,
                                                capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())
        assert main(["run-scenario", str(grid_file), "--shard", "0/2",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        capsys.readouterr()
        assert main(["report", str(grid_file),
                     "--cache-dir", str(tmp_path / "c")]) == 2
        assert "no stored result" in capsys.readouterr().err

    def test_bad_shard_spec_exits_2(self, grid, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())
        assert main(["run-scenario", str(grid_file),
                     "--shard", "two"]) == 2
        assert "I/K" in capsys.readouterr().err
        assert main(["run-scenario", str(grid_file),
                     "--shard", "2/2"]) == 2
        assert "0-based" in capsys.readouterr().err

    def test_scenario_shard_files_run_and_merge(self, grid, tmp_path,
                                                capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())
        assert main(["scenario", "shard", str(grid_file), "2",
                     "--out-dir", str(tmp_path / "parts")]) == 0
        capsys.readouterr()
        parts = sorted((tmp_path / "parts").glob("*.json"))
        assert [p.name for p in parts] \
            == ["grid.shard0of2.json", "grid.shard1of2.json"]
        # Each shard file is self-contained and stamped; loading a
        # tampered one fails (covered in scenario tests) — here the
        # files must simply run and cover the grid exactly once.
        for i, part in enumerate(parts):
            assert main(["run-scenario", str(part),
                         "--cache-dir", str(tmp_path / f"p{i}")]) == 0
        assert main(["store", "merge",
                     "--into", str(tmp_path / "pm"),
                     str(tmp_path / "p0"), str(tmp_path / "p1")]) == 0
        capsys.readouterr()
        summaries = load_scenario_summaries(
            grid.scenarios(), ResultStore(tmp_path / "pm")
        )
        assert len(summaries) == len(grid)

    def test_merge_refuses_different_grids_from_manifests(self, grid,
                                                          tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())
        other = ScenarioGrid(
            Scenario(protocol="dbao", duty_ratio=0.2, n_packets=2, seed=9,
                     topology=TopologySpec(kind="line",
                                           params={"n_sensors": 6})),
            name="other-grid",
        )
        other_file = tmp_path / "other.json"
        other_file.write_text(other.to_json())
        assert main(["run-scenario", str(grid_file), "--shard", "0/2",
                     "--cache-dir", str(tmp_path / "g0")]) == 0
        assert main(["run-scenario", str(other_file),
                     "--cache-dir", str(tmp_path / "o")]) == 0
        capsys.readouterr()
        assert main(["store", "merge", "--into", str(tmp_path / "o"),
                     str(tmp_path / "g0")]) == 2
        assert "grid-fingerprint conflict" in capsys.readouterr().err

    def test_gc_cleans_a_damaged_store(self, grid, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(grid.to_json())
        cache = tmp_path / "c"
        assert main(["run-scenario", str(grid_file), "--shard", "0/2",
                     "--cache-dir", str(cache)]) == 0
        (cache / ("0" * 64 + ".rsum")).write_bytes(b"killed mid-write")
        capsys.readouterr()
        assert main(["store", "verify", str(cache)]) == 1
        assert "truncated" in capsys.readouterr().out
        assert main(["store", "gc", str(cache)]) == 0
        capsys.readouterr()
        assert main(["store", "verify", str(cache)]) == 0
