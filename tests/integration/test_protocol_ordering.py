"""Integration: the paper's protocol dominance and Fig. 9-11 shapes."""

import numpy as np
import pytest

from repro.analysis.validate import dominance_holds, relative_spread
from repro.sim.runner import ExperimentSpec, run_experiment, run_protocol_sweep


@pytest.fixture(scope="module")
def trace():
    from repro.experiments._common import get_trace

    return get_trace("smoke")


@pytest.fixture(scope="module")
def sweep_grid(trace):
    return run_protocol_sweep(
        trace, protocols=("opt", "dbao", "of"), duty_ratios=(0.05, 0.2),
        n_packets=4, seed=2011,
    )


class TestDominance:
    def test_opt_dbao_of_ordering(self, sweep_grid):
        # Fig. 10's ordering at each duty ratio (generous slack: the smoke
        # network is small and noisy).
        for duty in (0.05, 0.2):
            delays = {
                proto: sweep_grid[proto][duty].mean_delay()
                for proto in ("opt", "dbao", "of")
            }
            assert delays["opt"] <= delays["dbao"] * 1.3
            assert delays["opt"] <= delays["of"] * 1.3

    def test_opt_has_fewest_failures(self, sweep_grid):
        for duty in (0.05, 0.2):
            fails = {
                proto: sweep_grid[proto][duty].mean_failures()
                for proto in ("opt", "dbao", "of")
            }
            assert fails["opt"] <= fails["dbao"]

    def test_everyone_completes(self, sweep_grid):
        for proto in sweep_grid:
            for duty in sweep_grid[proto]:
                assert sweep_grid[proto][duty].completion_rate() == 1.0


class TestDutyCycleShape:
    def test_delay_explodes_at_low_duty(self, sweep_grid):
        # Fig. 10: delay at 5% substantially above delay at 20%.
        for proto in ("opt", "dbao", "of"):
            low = sweep_grid[proto][0.05].mean_delay()
            high = sweep_grid[proto][0.2].mean_delay()
            assert low > high

    def test_failures_do_not_explode(self, sweep_grid):
        # Fig. 11: failures stay within the same order of magnitude across
        # duty ratios (they are set by loss, not by sleeping).
        for proto in ("opt", "dbao", "of"):
            fails = [sweep_grid[proto][d].mean_failures() for d in (0.05, 0.2)]
            assert max(fails) <= 6 * max(min(fails), 1)


class TestPairedDominance:
    def test_opt_dominates_of_with_statistical_significance(self, trace):
        # Replications share schedule/loss streams across protocols, so
        # the comparison is paired — the strongest statistical form of
        # the Fig. 10 ordering claim.
        from repro.analysis.stats import dominates_paired

        summaries = {}
        for proto in ("opt", "of"):
            summaries[proto] = run_experiment(trace, ExperimentSpec(
                protocol=proto, duty_ratio=0.1, n_packets=4, seed=17,
                n_replications=5,
            ))
        assert dominates_paired(
            summaries["opt"].per_replication_delays(),
            summaries["of"].per_replication_delays(),
        )


class TestBlockingEffect:
    def test_delay_grows_with_packet_index(self, trace):
        # DBAO: injection outpaces the contended drain, so later packets
        # visibly queue behind earlier ones (the Fig. 9 ramp). OPT's
        # designated pipeline injects at its own drain rate and shows a
        # flat curve instead — "fully pipelined", also consistent with
        # the theory.
        summary = run_experiment(trace, ExperimentSpec(
            protocol="dbao", duty_ratio=0.1, n_packets=8, seed=4,
        ))
        curve = summary.per_packet_delay()
        third = len(curve) // 3
        assert np.nanmean(curve[-third:]) > np.nanmean(curve[:third])
