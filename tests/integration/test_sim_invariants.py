"""Property-based invariants of the simulation engine.

These run whole floods on randomized small substrates and check model
invariants that must hold for *every* protocol and every draw:

* receptions only happen at the receiver's active slots;
* a relay never forwards a packet before it received it (causality);
* possession only grows, and completed packets stay completed;
* the energy ledger is consistent with the metric counters;
* FCFS at the source: first transmissions happen in packet order.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.generators import line_topology, random_geometric_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.net.topology import SOURCE
from repro.protocols import make_protocol
from repro.sim.engine import SimConfig, run_flood
from repro.sim.events import EventKind

PROTOCOLS = ("opt", "dbao", "of", "dca", "naive", "crosslayer")


def small_flood(protocol: str, seed: int, n_sensors: int = 10, period: int = 6,
                n_packets: int = 3):
    rng = np.random.default_rng(seed)
    topo = random_geometric_topology(
        n_sensors + 1, area_m=150.0, rng=rng, neighbor_threshold=0.2
    )
    schedules = ScheduleTable.random(topo.n_nodes, period, rng)
    proto = make_protocol(protocol)
    from repro.protocols.opt import opt_radio_model

    radio = opt_radio_model() if protocol == "opt" else None
    config = SimConfig(track_events=True, max_slots=30_000,
                       **({"radio": radio} if radio else {}))
    result = run_flood(
        topo, schedules, FloodWorkload(n_packets), proto,
        np.random.default_rng(seed + 1), config,
    )
    return topo, schedules, result


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", [1, 2])
class TestUniversalInvariants:
    def test_receptions_at_active_slots(self, protocol, seed):
        topo, schedules, result = small_flood(protocol, seed)
        for e in result.events:
            if e.kind in (EventKind.DELIVER, EventKind.OVERHEAR,
                          EventKind.DUPLICATE):
                assert schedules.is_active(e.receiver, e.t), (
                    f"{protocol}: node {e.receiver} received at slot {e.t} "
                    f"while dormant"
                )

    def test_causality_no_forwarding_before_reception(self, protocol, seed):
        topo, schedules, result = small_flood(protocol, seed)
        arrival = result.arrival
        for e in result.events:
            if e.kind is EventKind.TX and e.sender != SOURCE:
                got_at = arrival[e.packet, e.sender]
                assert 0 <= got_at <= e.t, (
                    f"{protocol}: node {e.sender} transmitted packet "
                    f"{e.packet} at t={e.t} but received it at {got_at}"
                )

    def test_source_first_transmissions_in_fcfs_order(self, protocol, seed):
        topo, schedules, result = small_flood(protocol, seed)
        first_tx = result.metrics.delays.first_tx
        pushed = first_tx[first_tx >= 0]
        assert np.all(np.diff(pushed) >= 0)

    def test_ledger_matches_metrics(self, protocol, seed):
        topo, schedules, result = small_flood(protocol, seed)
        assert result.ledger.total_tx == result.metrics.tx_attempts
        assert result.ledger.total_failures == result.metrics.tx_failures
        result.ledger.validate()

    def test_transmissions_respect_links(self, protocol, seed):
        topo, schedules, result = small_flood(protocol, seed)
        for e in result.events:
            if e.kind is EventKind.TX:
                assert topo.has_link(e.sender, e.receiver), (
                    f"{protocol}: transmission over non-existent link "
                    f"{e.sender}->{e.receiver}"
                )


class TestRandomizedCompletion:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dbao_always_completes_on_chains(self, seed):
        # Chains are the adversarial case (single path, no diversity).
        topo = line_topology(5, prr=0.8)
        rng = np.random.default_rng(seed)
        schedules = ScheduleTable.random(topo.n_nodes, 5, rng)
        result = run_flood(
            topo, schedules, FloodWorkload(2), make_protocol("dbao"),
            np.random.default_rng(seed + 1),
            SimConfig(coverage_target=1.0, max_slots=50_000),
        )
        assert result.completed

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_possession_monotone_under_any_seed(self, seed):
        topo, schedules, result = None, None, None
        topo = line_topology(4, prr=0.9)
        rng = np.random.default_rng(seed)
        schedules = ScheduleTable.random(topo.n_nodes, 4, rng)
        result = run_flood(
            topo, schedules, FloodWorkload(2), make_protocol("of"),
            np.random.default_rng(seed + 1),
            SimConfig(coverage_target=1.0, max_slots=50_000,
                      track_events=True),
        )
        assert result.completed
        # Arrival slots are consistent with DELIVER events.
        for e in result.events:
            if e.kind is EventKind.DELIVER:
                assert result.arrival[e.packet, e.receiver] <= e.t
