"""Documentation consistency: DESIGN/EXPERIMENTS/README stay in sync with code."""

from pathlib import Path

import pytest

import repro
from repro.experiments import experiment_ids
from repro.protocols import available_protocols

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def docs():
    return {
        name: (REPO / name).read_text()
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")
    }


class TestDocsExist:
    def test_required_files_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "LICENSE", "pyproject.toml"):
            assert (REPO / name).exists(), f"{name} missing"


class TestDesignCoverage:
    def test_every_experiment_in_design_index(self, docs):
        for eid in experiment_ids():
            if eid in ("fig3",):  # listed, but double-check anyway
                pass
            assert eid in docs["DESIGN.md"], (
                f"experiment {eid!r} missing from DESIGN.md"
            )

    def test_every_protocol_mentioned(self, docs):
        for proto in available_protocols():
            assert proto in docs["DESIGN.md"].lower(), (
                f"protocol {proto!r} missing from DESIGN.md"
            )

    def test_scenario_grid_registry_table(self, docs):
        # DESIGN.md's grid-id table must list exactly the registered
        # scenario grids, each as a `| `id` | ...` table row.
        from repro.experiments.registry import scenario_grid_ids

        rows = [line for line in docs["DESIGN.md"].splitlines()
                if line.startswith("| `")]
        tabled = {line.split("`")[1] for line in rows}
        for gid in scenario_grid_ids():
            assert gid in tabled, (
                f"scenario grid {gid!r} missing from the DESIGN.md table"
            )

    def test_paper_figures_covered(self, docs):
        for artifact in ("fig5", "fig6", "fig7", "fig9", "fig10", "fig11",
                         "table1"):
            assert artifact in docs["EXPERIMENTS.md"].lower().replace(
                "fig. ", "fig"
            ) or artifact in docs["EXPERIMENTS.md"], (
                f"{artifact} not recorded in EXPERIMENTS.md"
            )


class TestReadme:
    def test_mentions_install_and_tests(self, docs):
        readme = docs["README.md"]
        assert "pip install -e ." in readme
        assert "pytest tests/" in readme
        assert "pytest benchmarks/" in readme

    def test_quickstart_snippet_runs(self):
        # The README's core quickstart calls must exist with these names.
        assert hasattr(repro, "run_experiment")
        assert hasattr(repro, "ExperimentSpec")
        assert hasattr(repro, "fwl_reliable")
        assert hasattr(repro, "fdl_theorem1")

    def test_version_consistent(self):
        import tomllib

        with open(REPO / "pyproject.toml", "rb") as fh:
            pyproject = tomllib.load(fh)
        assert pyproject["project"]["version"] == repro.__version__


class TestExamplesExist:
    def test_at_least_three_runnable_examples(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {p.name for p in examples}
        assert "quickstart.py" in names

    def test_examples_import_public_api_only(self):
        # Examples must not reach into private modules (underscore paths).
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert "._" not in text.replace("self._", ""), (
                f"{path.name} uses a private module"
            )

    def test_scenario_files_are_valid(self):
        from repro.scenario import load_scenario_file

        files = sorted((REPO / "examples").glob("*.json"))
        names = {p.name for p in files}
        assert {"fig9.json", "hetero.json",
                "scenario_smoke.json"} <= names
        for path in files:
            if path.name.endswith(".expected.json"):
                continue
            assert len(load_scenario_file(path)) >= 1, path.name
