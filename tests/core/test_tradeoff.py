"""Tests for the duty-cycle trade-off instrument (future-work direction 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tradeoff import (
    EnergyModel,
    GainWeights,
    gain_curve,
    lifetime_slots,
    networking_gain,
    optimal_duty_cycle,
)


class TestEnergyModel:
    def test_power_draw_monotone_in_duty(self):
        model = EnergyModel()
        draws = [model.power_draw(d) for d in (0.01, 0.05, 0.2, 1.0)]
        assert all(a < b for a, b in zip(draws, draws[1:]))

    def test_always_on_draw(self):
        model = EnergyModel(sleep_power=0.0, flood_tx_per_slot=0.0)
        assert model.power_draw(1.0) == pytest.approx(model.active_power)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(battery_capacity=0)
        with pytest.raises(ValueError):
            EnergyModel(sleep_power=2.0, active_power=1.0)
        with pytest.raises(ValueError):
            EnergyModel().power_draw(0.0)


class TestLifetime:
    def test_roughly_linear_in_inverse_duty(self):
        # The paper: "system lifetime linearly increases as duty shrinks".
        model = EnergyModel(sleep_power=0.0, flood_tx_per_slot=0.0)
        l5 = lifetime_slots(0.05, model)
        l10 = lifetime_slots(0.10, model)
        assert l5 / l10 == pytest.approx(2.0)

    def test_sleep_power_caps_lifetime(self):
        model = EnergyModel(sleep_power=0.01)
        cap = model.battery_capacity / model.power_draw(1e-9) if False else None
        # With nonzero sleep power, halving the duty less-than-doubles life.
        assert lifetime_slots(0.01, model) < 2 * lifetime_slots(0.02, model)


class TestGain:
    def test_interior_maximum_exists(self):
        # The paper's conclusion: the benefit curve is not monotone — an
        # extremely low duty cycle is not always beneficial.
        duties = np.geomspace(0.01, 0.5, 24)
        points = gain_curve(duties, n_sensors=298, k=1.7)
        gains = np.asarray([pt.gain for pt in points])
        best = int(gains.argmax())
        assert 0 < best < gains.size - 1

    def test_weights_shift_the_optimum(self):
        # Valuing lifetime more pushes the optimal duty cycle lower.
        low = optimal_duty_cycle(298, 1.7, GainWeights(lifetime_weight=3.0))
        high = optimal_duty_cycle(298, 1.7, GainWeights(delay_weight=3.0))
        assert low.duty_ratio <= high.duty_ratio

    def test_point_fields_consistent(self):
        pt = networking_gain(0.05, 298, 1.5)
        assert pt.period == 20
        assert pt.lifetime > 0 and pt.delay > 0

    def test_optimum_beats_endpoints(self):
        best = optimal_duty_cycle(298, 1.7, duty_min=0.01, duty_max=0.5)
        lo = networking_gain(0.01, 298, 1.7)
        hi = networking_gain(0.5, 298, 1.7)
        assert best.gain >= lo.gain and best.gain >= hi.gain

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            GainWeights(lifetime_weight=-1.0)
        with pytest.raises(ValueError):
            GainWeights(lifetime_weight=0.0, delay_weight=0.0)

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            optimal_duty_cycle(100, 1.5, duty_min=0.5, duty_max=0.1)
        with pytest.raises(ValueError):
            optimal_duty_cycle(100, 1.5, n_grid=1)

    @given(st.floats(1.0, 3.0))
    @settings(max_examples=20, deadline=5000)
    def test_optimum_within_requested_range(self, k):
        best = optimal_duty_cycle(200, k, duty_min=0.02, duty_max=0.25)
        assert 0.02 <= best.duty_ratio <= 0.25 + 1e-9
