"""Tests for the Sec. IV-B link-loss recurrence and delay predictor."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkloss import (
    delay_inflation_factor,
    delay_vs_duty_cycle,
    effective_k,
    growth_rate,
    pipeline_saturated,
    predicted_delay,
    predicted_delay_asymptotic,
    recurrence_hitting_time,
    simulate_recurrence,
)


class TestGrowthRate:
    def test_golden_ratio_base_case(self):
        # kT = 1: lambda^2 = lambda + 1 -> golden ratio.
        assert growth_rate(1.0, 1) == pytest.approx((1 + math.sqrt(5)) / 2)

    def test_root_satisfies_characteristic_equation(self):
        for k, T in [(1.25, 20), (2.0, 50), (1.0, 5)]:
            lam = growth_rate(k, T)
            lag = round(k * T)
            assert lam ** (lag + 1) == pytest.approx(lam**lag + 1, rel=1e-9)

    def test_in_valid_range(self):
        for k, T in [(1.0, 1), (2.0, 100)]:
            lam = growth_rate(k, T)
            assert 1.0 < lam <= 2.0

    @given(st.floats(1.0, 3.0), st.integers(1, 100))
    @settings(max_examples=60)
    def test_decreasing_in_lag(self, k, T):
        # Larger kT -> slower growth.
        lam = growth_rate(k, T)
        lam_worse = growth_rate(k, T + 5)
        assert lam_worse < lam

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            growth_rate(0.5, 10)
        with pytest.raises(ValueError):
            growth_rate(1.5, 0)


class TestRecurrence:
    def test_trajectory_matches_manual_iteration(self):
        # lag = 2: X = 1,1,1,2,3,5,8 (Fibonacci with delay 2 -> Padovan-ish).
        x = simulate_recurrence(1.0, 2, 6)
        assert x.tolist() == [1, 1, 1, 2, 3, 4, 6]

    def test_constant_before_lag(self):
        x = simulate_recurrence(2.0, 5, 12)
        assert np.all(x[:11] == 1.0)

    def test_monotone_nondecreasing(self):
        x = simulate_recurrence(1.5, 4, 60)
        assert np.all(np.diff(x) >= 0)

    def test_growth_matches_eigenvalue_asymptotically(self):
        k, T = 1.0, 3
        lam = growth_rate(k, T)
        x = simulate_recurrence(k, T, 400)
        ratio = x[-1] / x[-2]
        assert ratio == pytest.approx(lam, rel=1e-3)


class TestHittingTime:
    def test_rejects_zero_sensors(self):
        with pytest.raises(ValueError):
            recurrence_hitting_time(0, 1.0, 5)

    def test_consistent_with_trajectory(self):
        n, k, T = 100, 1.5, 10
        t_hit = recurrence_hitting_time(n, k, T)
        x = simulate_recurrence(k, T, t_hit + 5)
        assert x[t_hit] >= 1 + n
        assert x[t_hit - 1] < 1 + n

    def test_alias(self):
        assert predicted_delay(298, 2.0, 20) == recurrence_hitting_time(
            298, 2.0, 20
        )

    @given(st.integers(1, 5000), st.floats(1.0, 3.0), st.integers(1, 50))
    @settings(max_examples=60, deadline=2000)
    def test_monotone_in_all_parameters(self, n, k, T):
        base = recurrence_hitting_time(n, k, T)
        assert recurrence_hitting_time(n + 100, k, T) >= base
        assert recurrence_hitting_time(n, k + 0.5, T) >= base
        assert recurrence_hitting_time(n, k, T + 5) >= base

    def test_asymptotic_tracks_exact(self):
        for k, T in [(1.25, 20), (2.0, 10)]:
            exact = recurrence_hitting_time(4096, k, T)
            approx = predicted_delay_asymptotic(4096, k, T)
            lag = round(k * T)
            # Exact includes the warm-up transient (~lag slots).
            assert abs(exact - approx) <= lag + 2


class TestFig7Series:
    def test_shape_matches_paper(self):
        duties = (0.02, 0.05, 0.10, 0.20)
        ks = (1.25, 1.42, 1.67, 2.0)
        grid = delay_vs_duty_cycle(298, duties, ks)
        assert grid.shape == (4, 4)
        # Worse links strictly above better links everywhere.
        assert np.all(np.diff(grid, axis=0) > 0)
        # Delay falls as the duty cycle rises.
        assert np.all(np.diff(grid, axis=1) < 0)
        # The k-spread widens as duty shrinks (loss magnifies duty delay).
        spread = grid[-1] - grid[0]
        assert spread[0] > spread[-1]

    def test_rejects_bad_duty(self):
        with pytest.raises(ValueError):
            delay_vs_duty_cycle(10, (0.0,), (1.5,))


class TestEffectiveK:
    def test_homogeneous(self):
        assert effective_k(np.asarray([0.5, 0.5])) == pytest.approx(2.0)

    def test_mean_of_inverse(self):
        prr = np.asarray([1.0, 0.5])
        assert effective_k(prr) == pytest.approx(1.5)

    def test_ignores_zeros(self):
        prr = np.asarray([0.0, 0.5])
        assert effective_k(prr) == pytest.approx(2.0)

    def test_rejects_empty_or_invalid(self):
        with pytest.raises(ValueError):
            effective_k(np.asarray([0.0]))
        with pytest.raises(ValueError):
            effective_k(np.asarray([1.5]))


class TestPipelineSaturation:
    def test_back_to_back_injection_always_saturates(self):
        # Generation gap 0: service can never keep up slot-for-slot.
        assert pipeline_saturated(298, 1.0, 20, 0)

    def test_slow_injection_not_saturated(self):
        assert not pipeline_saturated(298, 1.0, 20, 1000)

    def test_loss_pushes_into_saturation(self):
        # A gap that perfect links sustain but k = 2 does not.
        T = 20
        gap = round(1.5 * T)
        assert not pipeline_saturated(298, 1.0, T, gap)
        assert pipeline_saturated(298, 2.0, T, gap)


class TestInflation:
    def test_no_inflation_for_perfect_links(self):
        assert delay_inflation_factor(1.0, 20) == pytest.approx(1.0)

    def test_grows_with_k(self):
        assert (
            delay_inflation_factor(2.0, 20)
            > delay_inflation_factor(1.5, 20)
            > delay_inflation_factor(1.1, 20)
            > 1.0
        )
