"""Tests for the source-queue (K_p) analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queueing import (
    dd1_queue_waits,
    dd1_start_times,
    expected_queue_wait,
    queue_is_stable,
    saturation_interval,
)


class TestDd1:
    def test_back_to_back_serializes(self):
        assert dd1_start_times(4, 0, 5).tolist() == [0, 5, 10, 15]

    def test_slow_generation_never_queues(self):
        starts = dd1_start_times(5, 20, 5)
        assert starts.tolist() == [0, 20, 40, 60, 80]
        assert dd1_queue_waits(5, 20, 5).tolist() == [0] * 5

    def test_critical_interval_exactly_stable(self):
        # g == s: each packet arrives as its predecessor finishes.
        assert dd1_queue_waits(6, 5, 5).tolist() == [0] * 6

    def test_unstable_waits_grow_linearly(self):
        waits = dd1_queue_waits(10, 3, 5)
        assert np.all(np.diff(waits) == 2)  # deficit of s - g per packet

    def test_validation(self):
        with pytest.raises(ValueError):
            dd1_start_times(0, 1, 1)
        with pytest.raises(ValueError):
            dd1_start_times(1, -1, 1)
        with pytest.raises(ValueError):
            dd1_start_times(1, 1, 0)

    @given(st.integers(1, 40), st.integers(0, 30), st.integers(1, 20))
    @settings(max_examples=80)
    def test_starts_are_feasible_and_ordered(self, M, g, s):
        starts = dd1_start_times(M, g, s)
        gens = np.arange(M) * g
        assert np.all(starts >= gens)  # causality
        assert np.all(np.diff(starts) >= s)  # one at a time

    @given(st.integers(2, 40), st.integers(0, 30), st.integers(1, 20))
    @settings(max_examples=60)
    def test_stability_dichotomy(self, M, g, s):
        waits = dd1_queue_waits(M, g, s)
        if g >= s:
            assert np.all(waits == 0)
        else:
            assert waits[-1] == (M - 1) * (s - g)


class TestSaturation:
    def test_interval_is_ktee(self):
        assert saturation_interval(2.0, 20) == 40
        assert saturation_interval(1.0, 20) == 20

    def test_stability_matches_paper_regimes(self):
        # The paper: loss can push a previously-sustainable rate into the
        # unbounded-blocking regime.
        T, gap = 20, 30
        assert queue_is_stable(gap, 1.0, T)
        assert not queue_is_stable(gap, 2.0, T)

    def test_expected_wait_zero_when_stable(self):
        assert expected_queue_wait(50, 100, 1.5, 20) == 0.0

    def test_expected_wait_grows_with_m_when_unstable(self):
        small = expected_queue_wait(10, 0, 1.5, 20)
        large = expected_queue_wait(100, 0, 1.5, 20)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            saturation_interval(0.5, 10)
        with pytest.raises(ValueError):
            queue_is_stable(-1, 1.5, 10)


class TestAgainstEngine:
    def test_source_first_tx_matches_dd1_on_star(self):
        """On a lossless star at 100% duty, the source is literally a
        D/D/1 server with unit service time: measured first transmissions
        equal the analytic departure schedule."""
        from repro.net.generators import star_topology
        from repro.net.packet import FloodWorkload
        from repro.net.schedule import ScheduleTable
        from repro.protocols.opt import OptOracle, opt_radio_model
        from repro.sim.engine import SimConfig, run_flood

        n_sensors, M = 3, 5
        topo = star_topology(n_sensors, prr=1.0)
        schedules = ScheduleTable(period=1, offsets=[0] * (n_sensors + 1))
        result = run_flood(
            topo, schedules, FloodWorkload(M),
            OptOracle(server_policy="any"), np.random.default_rng(0),
            SimConfig(coverage_target=1.0,
                      radio=opt_radio_model(lossless=True, overhearing=False)),
        )
        first_tx = result.metrics.delays.first_tx
        # One packet enters service per slot (unit service at the source).
        expected = dd1_start_times(M, 0, 1)
        assert np.array_equal(first_tx, expected)
