"""Tests for Theorem 1, Theorem 2, Table I and Corollary 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fdl import (
    FdlBounds,
    fdl_theorem1,
    fdl_theorem1_series,
    fdl_theorem2_bounds,
    fdl_theorem2_series,
    fwl_multi,
    knee_point,
    packet_waiting,
    single_packet_waitings,
    waiting_table,
)


class TestTheorem1:
    def test_below_knee_formula(self):
        # M < m: T(m/2 + M - 1). N=1024 -> m=11.
        assert fdl_theorem1(1024, 5, 10) == pytest.approx(10 * (5.5 + 4))

    def test_above_knee_formula(self):
        # M >= m: T(m + M/2 - 1).
        assert fdl_theorem1(1024, 20, 10) == pytest.approx(10 * (11 + 9))

    def test_knee_continuity(self):
        # Both branches agree at M = m.
        n, period = 1024, 5
        m = single_packet_waitings(n)
        below = period * (0.5 * m + m - 1)
        above = period * (m + 0.5 * m - 1)
        assert below == pytest.approx(above)
        assert fdl_theorem1(n, m, period) == pytest.approx(above)

    def test_marginal_delay_halves_after_knee(self):
        n, period = 1024, 20
        m = knee_point(n)
        before = fdl_theorem1(n, m - 1, period) - fdl_theorem1(n, m - 2, period)
        after = fdl_theorem1(n, m + 5, period) - fdl_theorem1(n, m + 4, period)
        assert before == pytest.approx(period)
        assert after == pytest.approx(period / 2)

    def test_linear_in_period(self):
        assert fdl_theorem1(256, 10, 10) == pytest.approx(
            2 * fdl_theorem1(256, 10, 5)
        )

    def test_series_matches_scalar(self):
        ms = np.arange(1, 25)
        series = fdl_theorem1_series(512, ms, 7)
        for i, M in enumerate(ms):
            assert series[i] == pytest.approx(fdl_theorem1(512, int(M), 7))

    @given(st.integers(2, 4096), st.integers(1, 60), st.integers(1, 100))
    @settings(max_examples=100)
    def test_positive_and_monotone_in_m(self, n, M, period):
        val = fdl_theorem1(n, M, period)
        nxt = fdl_theorem1(n, M + 1, period)
        assert val > 0
        assert nxt > val

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fdl_theorem1(100, 0, 5)
        with pytest.raises(ValueError):
            fdl_theorem1(100, 5, 0)


class TestTheorem2:
    def test_bounds_bracket_theorem1(self):
        # Theorem 1's exact value (power-of-two case) must lie within the
        # arbitrary-N bounds.
        for n in (256, 1024):
            for M in (2, 5, 11, 20, 40):
                b = fdl_theorem2_bounds(n, M, 5)
                assert b.lower <= fdl_theorem1(n, M, 5) <= b.upper

    def test_lower_equals_theorem1(self):
        # The paper's lower bounds coincide with the Theorem 1 forms.
        for M in (3, 15):
            assert fdl_theorem2_bounds(1000, M, 8).lower == pytest.approx(
                fdl_theorem1(1000, M, 8)
            )

    def test_paper_branch_formulas(self):
        n, period = 1000, 5
        m = single_packet_waitings(n)  # 10 for N=1000
        b_small = fdl_theorem2_bounds(n, m - 2, period)
        assert b_small.upper == pytest.approx(period * (m + 1.5 * (m - 2) - 1.5))
        b_large = fdl_theorem2_bounds(n, m + 2, period)
        assert b_large.upper == pytest.approx(period * (2 * m + 0.5 * (m + 2) - 1))

    def test_series_matches_scalar(self):
        ms = np.arange(2, 21)
        lower, upper = fdl_theorem2_series(300, ms, 5)
        for i, M in enumerate(ms):
            b = fdl_theorem2_bounds(300, int(M), 5)
            assert lower[i] == pytest.approx(b.lower)
            assert upper[i] == pytest.approx(b.upper)

    @given(st.integers(2, 4096), st.integers(1, 60), st.integers(1, 50))
    @settings(max_examples=100)
    def test_band_is_valid(self, n, M, period):
        b = fdl_theorem2_bounds(n, M, period)
        assert b.lower <= b.upper
        assert b.width >= 0

    def test_fdlbounds_validation(self):
        with pytest.raises(ValueError):
            FdlBounds(lower=5.0, upper=1.0)
        assert FdlBounds(1.0, 2.0).contains(1.5)
        assert not FdlBounds(1.0, 2.0).contains(3.0)


class TestTableI:
    def test_small_m_column(self):
        # M < m: W_p = m + p.
        n = 1024
        m = single_packet_waitings(n)
        table = waiting_table(n, m - 1)
        assert [w for _, w in table] == [m + p for p in range(m - 1)]

    def test_large_m_saturates(self):
        # M >= m: W_p = m + (m-1) for p >= m - 1.
        n = 1024
        m = single_packet_waitings(n)
        table = waiting_table(n, m + 10)
        tail = [w for p, w in table if p >= m - 1]
        assert all(w == 2 * m - 1 for w in tail)

    def test_packet_waiting_bounds(self):
        with pytest.raises(IndexError):
            packet_waiting(5, 100, 5)
        with pytest.raises(IndexError):
            packet_waiting(-1, 100, 5)

    @given(st.integers(2, 5000), st.integers(1, 80))
    @settings(max_examples=80)
    def test_waitings_monotone_then_flat(self, n, M):
        ws = [w for _, w in waiting_table(n, M)]
        diffs = np.diff(ws)
        assert np.all((diffs == 0) | (diffs == 1))
        # Once flat, stays flat.
        if 0 in diffs:
            first_flat = int(np.flatnonzero(diffs == 0)[0])
            assert np.all(diffs[first_flat:] == 0)


class TestFwlMulti:
    def test_small_m_formula(self):
        # FWL = m + 2M - 2 for M < m.
        n = 1024
        m = single_packet_waitings(n)
        assert fwl_multi(n, 4) == m + 2 * 4 - 2

    def test_large_m_formula(self):
        # FWL = 2m + M - 2 for M >= m.
        n = 1024
        m = single_packet_waitings(n)
        assert fwl_multi(n, m + 7) == 2 * m + (m + 7) - 2

    def test_single_packet_reduces_to_m(self):
        assert fwl_multi(511, 1) == single_packet_waitings(511)


class TestKneePoint:
    def test_equals_m(self):
        assert knee_point(1024) == 11
        assert knee_point(256) == 9

    @given(st.integers(1, 10**5))
    @settings(max_examples=40)
    def test_matches_single_packet_waitings(self, n):
        assert knee_point(n) == single_packet_waitings(n)
