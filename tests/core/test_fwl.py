"""Tests for the FWL closed forms (Lemma 2, Eq. 6, Corollary 1 window)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fwl import (
    blocking_window,
    empirical_fwl,
    fwl_lossy,
    fwl_mu,
    fwl_reliable,
)


class TestFwlReliable:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (3, 2), (4, 3), (7, 3), (255, 8), (256, 9), (1023, 10),
         (1024, 11), (4096, 13)],
    )
    def test_known_values(self, n, expected):
        assert fwl_reliable(n) == expected

    def test_rejects_zero_sensors(self):
        with pytest.raises(ValueError):
            fwl_reliable(0)

    @given(st.integers(1, 10**6))
    @settings(max_examples=100)
    def test_equals_ceil_log2(self, n):
        assert fwl_reliable(n) == math.ceil(math.log2(1 + n))

    @given(st.integers(1, 10**5))
    @settings(max_examples=60)
    def test_monotone_in_n(self, n):
        assert fwl_reliable(n + 1) >= fwl_reliable(n)


class TestFwlMu:
    def test_reduces_to_reliable_at_mu_two(self):
        for n in (5, 100, 1024):
            assert fwl_mu(n, 2.0) == fwl_reliable(n)

    def test_paper_fig_semantics_lossier_needs_more_waitings(self):
        assert fwl_mu(1024, 1.2) > fwl_mu(1024, 1.5) > fwl_mu(1024, 2.0)

    def test_unbounded_as_mu_approaches_one(self):
        # "FWL is not upper bounded since links can be unlimited lossy."
        assert fwl_mu(1024, 1.001) > 1000

    @pytest.mark.parametrize("mu", [0.5, 1.0, 2.1])
    def test_rejects_mu_outside_range(self, mu):
        with pytest.raises(ValueError):
            fwl_mu(100, mu)

    @given(st.integers(1, 10**5), st.floats(1.01, 2.0))
    @settings(max_examples=80)
    def test_closed_form(self, n, mu):
        assert fwl_mu(n, mu) == math.ceil(math.log2(1 + n) / math.log2(mu))


class TestFwlLossy:
    def test_is_mu_form_with_one_plus_q(self):
        assert fwl_lossy(511, 0.5) == fwl_mu(511, 1.5)

    def test_perfect_matches_reliable(self):
        assert fwl_lossy(511, 1.0) == fwl_reliable(511)

    def test_rejects_bad_prob(self):
        with pytest.raises(ValueError):
            fwl_lossy(10, 0.0)
        with pytest.raises(ValueError):
            fwl_lossy(10, 1.5)


class TestEmpiricalFwl:
    def test_matches_lemma2_within_rounding(self):
        # Lemma 2 holds up to the ceil: the MC mean must fall within one
        # compact slot of the closed form.
        rng = np.random.default_rng(99)
        for q in (0.5, 0.8, 1.0):
            measured = empirical_fwl(1024, q, n_ensembles=1500, rng=rng).mean()
            theory = fwl_lossy(1024, q)
            assert abs(measured - theory) <= 1.0

    def test_perfect_links_deterministic(self):
        rng = np.random.default_rng(0)
        times = empirical_fwl(255, 1.0, n_ensembles=10, rng=rng)
        assert np.all(times == fwl_reliable(255))


class TestBlockingWindow:
    def test_corollary1_value(self):
        # ceil(log2(1+N)) - 1 packets of bounded blocking.
        assert blocking_window(1024) == 10

    def test_single_sensor(self):
        assert blocking_window(1) == 0

    @given(st.integers(1, 10**5))
    @settings(max_examples=50)
    def test_nonnegative_and_one_less_than_m(self, n):
        assert blocking_window(n) == max(fwl_reliable(n) - 1, 0)
