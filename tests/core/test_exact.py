"""Tests for the exact tree-delay computation."""

import numpy as np
import pytest

from repro.core.exact import DelayPmf, ExactTreeDelay
from repro.net.generators import line_topology
from repro.net.schedule import ScheduleTable


def chain_setup(n_sensors=3, prr=1.0, period=5, offsets=None):
    topo = line_topology(n_sensors, prr=prr)
    if offsets is None:
        offsets = list(range(topo.n_nodes))
        offsets = [o % period for o in offsets]
    schedules = ScheduleTable(period=period, offsets=offsets)
    parent = np.arange(-1, topo.n_nodes - 1)
    return topo, schedules, parent


class TestDelayPmf:
    def test_validation(self):
        with pytest.raises(ValueError):
            DelayPmf(pmf=np.asarray([[0.5]]), tail=0.0)
        with pytest.raises(ValueError):
            DelayPmf(pmf=np.asarray([0.9]), tail=0.5)  # mass > 1
        with pytest.raises(ValueError):
            DelayPmf(pmf=np.asarray([-0.1, 0.5]), tail=0.0)

    def test_mean_and_quantile(self):
        pmf = DelayPmf(pmf=np.asarray([0.0, 0.5, 0.0, 0.5]), tail=0.0)
        assert pmf.mean() == pytest.approx(2.0)
        assert pmf.quantile(0.4) == 1
        assert pmf.quantile(0.9) == 3

    def test_quantile_beyond_horizon(self):
        pmf = DelayPmf(pmf=np.asarray([0.1]), tail=0.9)
        with pytest.raises(ValueError):
            pmf.quantile(0.5)


class TestPerfectChain:
    def test_deterministic_arrivals(self):
        # Perfect links, staggered offsets 0,1,2,3: hop i delivered at
        # slot i (parent forwardable at i, child wakes at i).
        topo, schedules, parent = chain_setup(n_sensors=3, prr=1.0, period=5)
        exact = ExactTreeDelay(topo, schedules, parent, horizon=64)
        pmfs = exact.compute(source_slot=0)
        for v in (1, 2, 3):
            pmf = pmfs[v]
            assert pmf.tail == pytest.approx(0.0, abs=1e-12)
            # All mass on a single slot.
            assert np.isclose(pmf.pmf.max(), 1.0)
            arrival = int(pmf.pmf.argmax())
            assert schedules.is_active(v, arrival)
            assert exact.expected_arrival(v) == pytest.approx(arrival)

    def test_arrivals_monotone_down_the_chain(self):
        topo, schedules, parent = chain_setup(n_sensors=4, prr=1.0, period=7,
                                              offsets=[0, 3, 1, 5, 2])
        exact = ExactTreeDelay(topo, schedules, parent, horizon=128)
        exact.compute()
        arrivals = [exact.expected_arrival(v) for v in range(1, 5)]
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))


class TestLossyChain:
    def test_single_hop_geometric(self):
        # One hop, PRR q, child wakes at offset 1, period 5, source at 0:
        # arrival at 1 + 5j with prob q (1-q)^j.
        topo, schedules, parent = chain_setup(n_sensors=1, prr=0.6, period=5,
                                              offsets=[0, 1])
        exact = ExactTreeDelay(topo, schedules, parent, horizon=200)
        pmf = exact.compute()[1]
        q = 0.6
        for j in range(5):
            assert pmf.pmf[1 + 5 * j] == pytest.approx(q * (1 - q) ** j)
        # Mean: 1 + 5 * E[failures] = 1 + 5 * (1-q)/q (within-horizon).
        assert pmf.mean() == pytest.approx(1 + 5 * (1 - q) / q, rel=1e-3)

    def test_tail_mass_shrinks_with_horizon(self):
        topo, schedules, parent = chain_setup(n_sensors=2, prr=0.3, period=10)
        short = ExactTreeDelay(topo, schedules, parent, horizon=64)
        long = ExactTreeDelay(topo, schedules, parent, horizon=512)
        t_short = short.compute()[2].tail
        t_long = long.compute()[2].tail
        assert t_long < t_short

    def test_lossier_links_later_arrivals(self):
        base = None
        for prr in (0.9, 0.5):
            topo, schedules, parent = chain_setup(n_sensors=3, prr=prr,
                                                  period=6)
            exact = ExactTreeDelay(topo, schedules, parent, horizon=800)
            exact.compute()
            mean = exact.expected_arrival(3)
            if base is None:
                base = mean
            else:
                assert mean > base


class TestAgainstSimulation:
    def test_chain_monte_carlo_matches_exact(self):
        """The strongest oracle check: engine vs closed-form, no slack knobs."""
        from repro.net.packet import FloodWorkload
        from repro.protocols.dca import DutyCycleAwareFlooding
        from repro.sim.engine import SimConfig, run_flood

        prr, period = 0.7, 5
        topo, schedules, parent = chain_setup(n_sensors=3, prr=prr,
                                              period=period,
                                              offsets=[0, 2, 4, 1])
        exact = ExactTreeDelay(topo, schedules, parent, horizon=512)
        exact.compute()
        expected = exact.expected_arrival(3)

        arrivals = []
        for seed in range(400):
            result = run_flood(
                topo, schedules, FloodWorkload(1), DutyCycleAwareFlooding(),
                np.random.default_rng(seed),
                SimConfig(coverage_target=1.0, max_slots=4000),
            )
            arrivals.append(int(result.arrival[0, 3]))
        measured = float(np.mean(arrivals))
        # 400 samples: standard error ~ sigma/20; allow 3 sigma-ish.
        assert measured == pytest.approx(expected, rel=0.1)

    def test_of_normal_approximation_is_conservative(self):
        # OF's hop model (T/q per hop) is offset-agnostic: it budgets a
        # full-period wait per attempt, so its quantiles sit *above* the
        # exact ones whenever the actual offsets are favorable — the safe
        # direction for OF's suppression decision (it under-suppresses,
        # never starves a receiver). Verify conservatism and that the
        # overestimate stays within the structural factor ~T/E[gap].
        from repro.protocols.tree import build_etx_tree

        topo, schedules, parent = chain_setup(n_sensors=4, prr=0.7, period=10)
        exact = ExactTreeDelay(topo, schedules, parent, horizon=2000)
        exact.compute()
        tree = build_etx_tree(topo, schedules.period)
        for v in (2, 4):
            exact_q = exact.node_pmf(v).quantile(0.8)
            approx_q = tree.delay_quantile(v, 0.8)
            assert approx_q >= exact_q
            assert approx_q <= 4 * exact_q


class TestValidation:
    def test_parent_shape(self):
        topo, schedules, _ = chain_setup()
        with pytest.raises(ValueError):
            ExactTreeDelay(topo, schedules, np.asarray([-1, 0]), horizon=64)

    def test_horizon_too_small(self):
        topo, schedules, parent = chain_setup(period=10)
        with pytest.raises(ValueError):
            ExactTreeDelay(topo, schedules, parent, horizon=5)

    def test_unreachable_node(self):
        topo, schedules, parent = chain_setup()
        parent = parent.copy()
        parent[2] = -1  # cut node 2 (and transitively 3)
        exact = ExactTreeDelay(topo, schedules, parent, horizon=64)
        exact.compute()
        with pytest.raises(ValueError):
            exact.node_pmf(2)

    def test_makespan_requires_valid_coverage(self):
        topo, schedules, parent = chain_setup()
        exact = ExactTreeDelay(topo, schedules, parent, horizon=64)
        with pytest.raises(ValueError):
            exact.expected_flood_makespan(coverage=0.0)

    def test_makespan_at_least_deepest_mean(self):
        topo, schedules, parent = chain_setup(n_sensors=3, prr=0.8, period=5)
        exact = ExactTreeDelay(topo, schedules, parent, horizon=512)
        exact.compute()
        makespan = exact.expected_flood_makespan(1.0)
        assert makespan >= exact.expected_arrival(3) * 0.9
