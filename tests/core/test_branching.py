"""Tests for the Galton-Watson machinery behind Lemma 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branching import (
    OffspringLaw,
    doubling_law,
    hitting_time,
    limit_tail_bound,
    limit_variance,
    simulate_normalized_limit,
    simulate_population,
)


class TestOffspringLaw:
    def test_doubling_law_mean_is_one_plus_q(self):
        # mu = 1 + q, the paper's "1 < mu <= 2".
        law = doubling_law(0.7)
        assert law.mean == pytest.approx(1.7)
        assert 1.0 < law.mean <= 2.0

    def test_doubling_law_variance(self):
        # offspring in {1, 2}: variance = q(1-q).
        q = 0.3
        law = doubling_law(q)
        assert law.variance == pytest.approx(q * (1 - q))

    def test_perfect_links_always_double(self):
        law = doubling_law(1.0)
        assert law.counts == (2,)
        assert law.mean == 2.0
        assert law.variance == 0.0

    def test_rejects_zero_success(self):
        with pytest.raises(ValueError):
            doubling_law(0.0)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            OffspringLaw(counts=(1, 2), probs=(0.5, 0.4))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            OffspringLaw(counts=(-1,), probs=(1.0,))

    def test_supercritical_flag(self):
        assert doubling_law(0.5).is_supercritical
        assert not OffspringLaw(counts=(0, 1), probs=(0.5, 0.5)).is_supercritical

    def test_sample_totals_exact_for_deterministic_law(self, rng):
        law = doubling_law(1.0)
        pops = np.asarray([1, 5, 100])
        assert law.sample_totals(pops, rng).tolist() == [2, 10, 200]

    def test_sample_totals_bounds(self, rng):
        # Totals lie in [pop, 2*pop] for the doubling law.
        law = doubling_law(0.5)
        pops = np.full(1000, 10, dtype=np.int64)
        totals = law.sample_totals(pops, rng)
        assert np.all(totals >= 10) and np.all(totals <= 20)

    @given(st.floats(0.05, 1.0))
    @settings(max_examples=30)
    def test_sample_totals_mean_matches_mu(self, q):
        rng = np.random.default_rng(17)
        law = doubling_law(q)
        pops = np.full(4000, 50, dtype=np.int64)
        totals = law.sample_totals(pops, rng)
        # Mean of totals/pop estimates mu within Monte-Carlo noise.
        assert totals.mean() / 50 == pytest.approx(law.mean, abs=0.02)


class TestSimulatePopulation:
    def test_shape_and_initial_row(self, rng):
        pops = simulate_population(doubling_law(0.5), 10, 7, rng, initial=3)
        assert pops.shape == (11, 7)
        assert np.all(pops[0] == 3)

    def test_monotone_nondecreasing(self, rng):
        # Offspring >= 1 per individual: populations never shrink.
        pops = simulate_population(doubling_law(0.4), 20, 50, rng)
        assert np.all(np.diff(pops, axis=0) >= 0)

    def test_perfect_law_doubles_exactly(self, rng):
        pops = simulate_population(doubling_law(1.0), 8, 3, rng)
        assert np.array_equal(pops[:, 0], 2 ** np.arange(9))

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            simulate_population(doubling_law(0.5), -1, 5, rng)
        with pytest.raises(ValueError):
            simulate_population(doubling_law(0.5), 5, 0, rng)
        with pytest.raises(ValueError):
            simulate_population(doubling_law(0.5), 5, 5, rng, initial=0)


class TestLemma1:
    def test_normalized_limit_mean_is_one(self, rng):
        # Lemma 1: E[W] = 1.
        w = simulate_normalized_limit(doubling_law(0.6), 25, 4000, rng)
        assert w.mean() == pytest.approx(1.0, abs=0.05)

    def test_normalized_limit_variance_formula(self, rng):
        # Lemma 1: Var[W] = sigma^2 / (mu^2 - mu).
        law = doubling_law(0.6)
        w = simulate_normalized_limit(law, 25, 6000, rng)
        assert w.var(ddof=1) == pytest.approx(limit_variance(law), rel=0.2)

    def test_limit_variance_closed_form(self):
        law = doubling_law(0.5)  # sigma^2 = 0.25, mu = 1.5
        assert limit_variance(law) == pytest.approx(0.25 / (1.5**2 - 1.5))

    def test_limit_variance_requires_supercritical(self):
        with pytest.raises(ValueError):
            limit_variance(OffspringLaw(counts=(0, 1), probs=(0.5, 0.5)))

    def test_tail_bound_is_chebyshev(self):
        # Pr{W > alpha} < sigma^2 / ((alpha-1)^2 (mu^2 - mu)).
        law = doubling_law(0.5)
        assert limit_tail_bound(law, 3.0) == pytest.approx(
            limit_variance(law) / 4.0
        )

    def test_tail_bound_requires_alpha_above_one(self):
        with pytest.raises(ValueError):
            limit_tail_bound(doubling_law(0.5), 1.0)

    def test_tail_bound_actually_bounds(self, rng):
        law = doubling_law(0.6)
        w = simulate_normalized_limit(law, 25, 6000, rng)
        for alpha in (2.0, 3.0):
            bound = limit_tail_bound(law, alpha)
            assert (w > alpha).mean() <= bound + 0.02


class TestHittingTime:
    def test_perfect_links_hit_exactly_log2(self, rng):
        # Deterministic doubling: hits 2^k at generation k.
        times = hitting_time(doubling_law(1.0), target=1024, n_ensembles=5, rng=rng)
        assert np.all(times == 10)

    def test_target_one_is_immediate(self, rng):
        times = hitting_time(doubling_law(0.5), target=1, n_ensembles=4, rng=rng)
        assert np.all(times == 0)

    def test_monotone_in_target(self, rng):
        law = doubling_law(0.5)
        t_small = hitting_time(law, 64, 500, np.random.default_rng(3)).mean()
        t_large = hitting_time(law, 4096, 500, np.random.default_rng(3)).mean()
        assert t_large > t_small

    def test_lossier_is_slower(self):
        t_good = hitting_time(
            doubling_law(0.9), 1025, 500, np.random.default_rng(5)
        ).mean()
        t_bad = hitting_time(
            doubling_law(0.4), 1025, 500, np.random.default_rng(5)
        ).mean()
        assert t_bad > t_good

    def test_rejects_bad_target(self, rng):
        with pytest.raises(ValueError):
            hitting_time(doubling_law(0.5), 0, 5, rng)
