"""Tests for Algorithm 1 (matrix-based flooding) and the half-duplex split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fdl import fwl_multi
from repro.core.fwl import fwl_reliable
from repro.core.matrix_flood import (
    MatrixFloodSimulator,
    classify_slot,
    split_half_duplex,
)


class TestLemma3:
    @pytest.mark.parametrize("n_sensors", [2, 4, 8, 16, 32, 64])
    @pytest.mark.parametrize("n_packets", [1, 2, 5, 12])
    def test_achieves_limit_for_powers_of_two(self, n_sensors, n_packets):
        # Lemma 3: M + m - 1 compact slots, exactly.
        result = MatrixFloodSimulator(n_sensors).run(n_packets)
        assert result.achieves_lemma3
        assert result.compact_slots == n_packets + result.m - 1

    @pytest.mark.parametrize("n_sensors", [4, 16, 64])
    def test_every_packet_takes_exactly_m_slots(self, n_sensors):
        # Packet p is injected at c = p and completes at c = p + m - 1.
        result = MatrixFloodSimulator(n_sensors).run(8)
        expected = np.arange(8) + result.m - 1
        assert np.array_equal(result.completion_slot, expected)
        assert np.all(result.per_packet_waitings() == result.m)

    def test_single_sensor_network(self):
        result = MatrixFloodSimulator(1).run(3)
        assert result.compact_slots == 3  # one delivery per slot

    def test_paper_fig3_example(self):
        # N = 4, M = 2: four compact slots total (M + m - 1 = 2 + 3 - 1).
        result = MatrixFloodSimulator(4).run(2, record_history=True)
        assert result.m == 3
        assert result.compact_slots == 4
        history = result.possession_history
        # c=0: only the source holds packet 0.
        assert history[0][0].tolist() == [True, False, False, False, False]
        # Final snapshot: everyone holds everything.
        assert history[-1].all()

    def test_history_is_monotone(self):
        result = MatrixFloodSimulator(8).run(4, record_history=True)
        prev = None
        for snap in result.possession_history:
            if prev is not None:
                assert np.all(snap >= prev)  # possession never lost
            prev = snap

    def test_transmissions_have_valid_endpoints(self):
        result = MatrixFloodSimulator(8).run(4)
        for slot_txs in result.transmissions:
            senders = [s for s, _, _ in slot_txs]
            assert len(senders) == len(set(senders))  # one TX per sender
            for s, r, p in slot_txs:
                assert 0 <= s < 8  # residues 0..N-1 send
                assert 1 <= r <= 8  # sensors receive
                assert s != r
                assert 0 <= p < 4


class TestNonPowerOfTwo:
    @pytest.mark.parametrize("n_sensors", [3, 5, 6, 7, 12, 100])
    def test_completes_for_arbitrary_n(self, n_sensors):
        result = MatrixFloodSimulator(n_sensors).run(5)
        assert np.all(result.completion_slot >= 0)

    @pytest.mark.parametrize("n_sensors", [3, 5, 11, 23])
    def test_compact_count_reasonable(self, n_sensors):
        # Algorithm 1 is only provably optimal for N = 2^n; for arbitrary
        # N it still finishes within a modest multiple of the limit
        # (the straggler round-robin adds at most ~m extra sweeps).
        M = 6
        result = MatrixFloodSimulator(n_sensors).run(M)
        assert result.compact_slots >= M  # at least one slot per injection
        assert result.compact_slots <= (M + result.m) * result.m
        assert result.compact_slots >= fwl_multi(n_sensors, 1)  # >= single m


class TestHalfDuplex:
    def test_expansion_counts_type2_slots(self):
        result = MatrixFloodSimulator(4).run(2)
        n_type2 = sum(
            1 for txs in result.transmissions if classify_slot(txs) == 2
        )
        assert result.half_duplex_slots == result.compact_slots + n_type2

    def test_paper_example_has_type2_slot(self):
        # The paper points at slot c=2 of Fig. 3 as type 2.
        result = MatrixFloodSimulator(4).run(2)
        kinds = [classify_slot(txs) for txs in result.transmissions]
        assert 2 in kinds
        assert kinds[0] == 1  # the very first slot is always type 1

    def test_expansion_bounded_by_double(self):
        for n in (8, 16):
            result = MatrixFloodSimulator(n).run(10)
            assert result.compact_slots <= result.half_duplex_slots
            assert result.half_duplex_slots <= 2 * result.compact_slots


class TestClassifySlot:
    def test_type1_examples(self):
        assert classify_slot([]) == 1
        assert classify_slot([(0, 1, 0)]) == 1
        assert classify_slot([(0, 1, 0), (2, 3, 0)]) == 1

    def test_type2_examples(self):
        assert classify_slot([(0, 1, 0), (1, 2, 0)]) == 2


class TestSplitHalfDuplex:
    def test_chain_alternates(self):
        txs = [(0, 1, 0), (1, 2, 0), (2, 3, 0)]
        first, second = split_half_duplex(txs)
        assert sorted(first + second) == sorted(txs)
        for half in (first, second):
            senders = {s for s, _, _ in half}
            receivers = {r for _, r, _ in half}
            assert not senders & receivers

    def test_even_cycle_splits(self):
        txs = [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]
        first, second = split_half_duplex(txs)
        assert len(first) == len(second) == 2

    def test_odd_cycle_rejected(self):
        txs = [(0, 1, 0), (1, 2, 0), (2, 0, 0)]
        with pytest.raises(ValueError):
            split_half_duplex(txs)

    def test_duplicate_sender_rejected(self):
        with pytest.raises(ValueError):
            split_half_duplex([(0, 1, 0), (0, 2, 0)])

    def test_empty(self):
        first, second = split_half_duplex([])
        assert first == [] and second == []

    @given(st.integers(1, 5))
    @settings(max_examples=20)
    def test_algorithm1_slots_always_splittable(self, log_n):
        # Every slot Algorithm 1 produces can be split (its cycles have
        # power-of-two length).
        n = 2**log_n
        result = MatrixFloodSimulator(n).run(4)
        for txs in result.transmissions:
            first, second = split_half_duplex(txs)
            assert sorted(first + second) == sorted(txs)


class TestValidation:
    def test_rejects_zero_sensors(self):
        with pytest.raises(ValueError):
            MatrixFloodSimulator(0)

    def test_rejects_zero_packets(self):
        with pytest.raises(ValueError):
            MatrixFloodSimulator(4).run(0)

    def test_is_power_of_two_flag(self):
        assert MatrixFloodSimulator(8).is_power_of_two
        assert not MatrixFloodSimulator(6).is_power_of_two
