"""Tests for the compact time-scale mapping (paper Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact_time import (
    CompactTimeline,
    expected_fdl_from_fwl,
    max_fdl_from_fwl,
)


class TestCompactTimeline:
    def test_paper_example_mapping(self):
        # Busy slots with gaps d1..d7 as in Fig. 2: compact indices are
        # consecutive while original slots skip the idle stretches.
        tl = CompactTimeline([0, 3, 4, 9])
        assert len(tl) == 4
        assert tl.to_original(0) == 0
        assert tl.to_original(2) == 4
        assert tl.to_compact(9) == 3

    def test_idle_slot_has_no_image(self):
        tl = CompactTimeline([0, 3])
        with pytest.raises(KeyError):
            tl.to_compact(1)

    def test_is_busy(self):
        tl = CompactTimeline([2, 5])
        assert tl.is_busy(2) and tl.is_busy(5)
        assert not tl.is_busy(0) and not tl.is_busy(3) and not tl.is_busy(7)

    def test_gaps_match_eq1_decomposition(self):
        # FDL = sum (d_h + 1): gaps + one slot per transmission.
        tl = CompactTimeline([1, 2, 6])
        gaps = tl.gaps()
        assert gaps.tolist() == [1, 0, 3]
        assert tl.total_span() == int(gaps.sum()) + len(tl)

    def test_from_activity_mask(self):
        tl = CompactTimeline.from_activity([True, False, False, True, True])
        assert tl.busy_slots == [0, 3, 4]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            CompactTimeline([3, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CompactTimeline([1, 1])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CompactTimeline([-1, 2])

    def test_empty_timeline(self):
        tl = CompactTimeline([])
        assert len(tl) == 0
        assert tl.total_span() == 0
        assert tl.gaps().size == 0

    def test_index_bounds(self):
        tl = CompactTimeline([5])
        with pytest.raises(IndexError):
            tl.to_original(1)
        with pytest.raises(IndexError):
            tl.to_original(-1)

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=60, unique=True))
    @settings(max_examples=60)
    def test_roundtrip_property(self, slots):
        slots = sorted(slots)
        tl = CompactTimeline(slots)
        for c, t in enumerate(slots):
            assert tl.to_compact(t) == c
            assert tl.to_original(c) == t

    @given(st.lists(st.integers(0, 300), min_size=1, max_size=50, unique=True))
    @settings(max_examples=60)
    def test_span_equals_gaps_plus_transmissions(self, slots):
        tl = CompactTimeline(sorted(slots))
        assert tl.total_span() == int(tl.gaps().sum()) + len(tl)


class TestFdlFromFwl:
    def test_expected_value_is_half_period_times_fwl(self):
        # E[FDL | FWL] = T/2 * FWL (Theorem 1's proof).
        assert expected_fdl_from_fwl(10, 20) == 100.0

    def test_max_is_twice_expected(self):
        # "Only a factor 2 difference between average and maximum FDL."
        fwl, period = 7, 12
        assert max_fdl_from_fwl(fwl, period) == 2 * expected_fdl_from_fwl(fwl, period)

    def test_zero_fwl(self):
        assert expected_fdl_from_fwl(0, 5) == 0.0
        assert max_fdl_from_fwl(0, 5) == 0

    @pytest.mark.parametrize("bad_fwl,bad_period", [(-1, 5), (3, 0)])
    def test_rejects_bad_args(self, bad_fwl, bad_period):
        with pytest.raises(ValueError):
            expected_fdl_from_fwl(bad_fwl, bad_period)
        with pytest.raises(ValueError):
            max_fdl_from_fwl(bad_fwl, bad_period)
