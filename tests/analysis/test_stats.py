"""Tests for small-sample statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    MeanCI,
    dominates_paired,
    mean_ci,
    paired_delta_ci,
)


class TestMeanCI:
    def test_point_for_single_sample(self):
        ci = mean_ci([5.0])
        assert ci.mean == ci.lower == ci.upper == 5.0
        assert ci.n == 1
        assert ci.halfwidth == 0.0

    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=8)
            if mean_ci(sample, 0.95).contains(10.0):
                hits += 1
        assert 0.88 <= hits / 200 <= 1.0

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        small = mean_ci(rng.normal(0, 1, size=5))
        large = mean_ci(rng.normal(0, 1, size=100))
        assert large.halfwidth < small.halfwidth

    def test_nan_samples_dropped(self):
        ci = mean_ci([1.0, np.nan, 3.0])
        assert ci.n == 2
        assert ci.mean == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([np.nan])
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            MeanCI(mean=5.0, lower=6.0, upper=7.0, confidence=0.9, n=2)


class TestPaired:
    def test_paired_is_tighter_than_unpaired(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(0, 5.0, size=10)  # shared noise (paired seeds)
        a = 100 + noise + rng.normal(0, 0.5, size=10)
        b = 103 + noise + rng.normal(0, 0.5, size=10)
        paired = paired_delta_ci(a, b)
        assert paired.halfwidth < 2.0  # shared noise cancels
        assert paired.mean == pytest.approx(-3.0, abs=1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_delta_ci([1.0, 2.0], [1.0])

    def test_dominates_paired(self):
        rng = np.random.default_rng(3)
        noise = rng.normal(0, 5.0, size=12)
        fast = 50 + noise
        slow = 60 + noise
        assert dominates_paired(fast, slow)
        assert not dominates_paired(slow, fast)

    def test_single_replication_falls_back(self):
        assert dominates_paired([1.0], [2.0])
        assert not dominates_paired([2.0], [1.0])


class TestRunSummaryCI:
    def test_delay_ci_from_replications(self, line5):
        from repro.sim.runner import ExperimentSpec, run_experiment

        summary = run_experiment(line5, ExperimentSpec(
            protocol="opt", duty_ratio=0.2, n_packets=2, seed=1,
            n_replications=5, coverage_target=1.0,
        ))
        ci = summary.delay_ci()
        assert ci.n == 5
        assert ci.lower <= summary.mean_delay() <= ci.upper
        assert summary.per_replication_delays().shape == (5,)
