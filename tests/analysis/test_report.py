"""Tests for ASCII rendering."""

import numpy as np
import pytest

from repro.analysis.report import (
    render_result,
    render_series_table,
    render_table,
    sparkline,
)
from repro.analysis.series import ExperimentResult, Series, Table


class TestSparkline:
    def test_constant(self):
        assert sparkline([1, 1, 1]) == "▁▁▁"

    def test_ramp_ends(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"

    def test_compression(self):
        line = sparkline(np.arange(400), width=40)
        assert len(line) <= 40

    def test_nan_and_empty(self):
        assert sparkline([]) == "(no data)"
        assert sparkline([np.nan, 1.0, np.nan, 2.0]) != "(no data)"


class TestRenderSeriesTable:
    def test_aligned_columns(self):
        out = render_series_table(
            [Series("a", [1, 2], [10, 20]), Series("b", [1, 2], [30, 40])],
            x_label="M",
        )
        lines = out.splitlines()
        assert "M" in lines[0] and "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows

    def test_mismatched_grid_rejected(self):
        with pytest.raises(ValueError):
            render_series_table(
                [Series("a", [1, 2], [1, 2]), Series("b", [3, 4], [1, 2])]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series_table([])


class TestRenderTable:
    def test_includes_title_and_strings(self):
        t = Table("my table", columns={
            "name": np.asarray(["x", "y"]),
            "value": np.asarray([1.5, 2.0]),
        })
        out = render_table(t)
        assert "my table" in out
        assert "x" in out and "1.50" in out


class TestRenderResult:
    def test_groups_by_x_grid(self):
        r = ExperimentResult(
            "fig", "title",
            series=[
                Series("a", [1, 2], [1, 2]),
                Series("b", [1, 2], [3, 4]),
                Series("c", [9, 10, 11], [0, 0, 0]),
            ],
            metadata={"seed": 1},
        )
        out = render_result(r)
        assert "fig" in out and "title" in out
        assert "seed=1" in out
        # Series c rendered in its own block.
        assert out.count("c") >= 1

    def test_without_sparklines(self):
        r = ExperimentResult("e", "t", series=[Series("a", [1], [1])])
        out = render_result(r, with_sparklines=False)
        assert "▁" not in out
