"""Tests for sweep utilities."""

import numpy as np
import pytest

from repro.analysis.sweep import SweepAxis, collect, sweep
from repro.net.generators import line_topology
from repro.sim.runner import ExperimentSpec


@pytest.fixture
def topo():
    return line_topology(4, prr=1.0)


@pytest.fixture
def base():
    return ExperimentSpec(protocol="opt", duty_ratio=0.2, n_packets=1, seed=2,
                          coverage_target=1.0)


class TestSweepAxis:
    def test_validation(self):
        with pytest.raises(ValueError):
            SweepAxis("duty_ratio", [])
        with pytest.raises(ValueError):
            SweepAxis("not_a_field", [1])


class TestSweep:
    def test_single_axis(self, topo, base):
        grid = sweep(topo, base, [SweepAxis("duty_ratio", (0.1, 0.5))])
        assert set(grid) == {(0.1,), (0.5,)}

    def test_cartesian_grid(self, topo, base):
        grid = sweep(topo, base, [
            SweepAxis("duty_ratio", (0.1, 0.5)),
            SweepAxis("n_packets", (1, 2)),
        ])
        assert len(grid) == 4
        assert (0.5, 2) in grid

    def test_no_axes_runs_base(self, topo, base):
        grid = sweep(topo, base, [])
        assert set(grid) == {()}

    def test_progress_callback(self, topo, base):
        seen = []
        sweep(topo, base, [SweepAxis("duty_ratio", (0.1, 0.5))],
              progress=seen.append)
        assert len(seen) == 2


class TestCollect:
    def test_extracts_sorted_xy(self, topo, base):
        grid = sweep(topo, base, [SweepAxis("duty_ratio", (0.5, 0.1))])
        x, y = collect(grid, lambda s: s.mean_delay())
        assert x.tolist() == [0.1, 0.5]
        assert y[0] >= y[1]  # lower duty -> higher delay
