"""Tests for experiment output containers."""

import numpy as np
import pytest

from repro.analysis.series import ExperimentResult, Series, Table


class TestSeries:
    def test_basic(self):
        s = Series("delay", x=[1, 2, 3], y=[10, 20, 30])
        assert len(s) == 3
        assert s.at(2) == 20.0

    def test_at_missing_x(self):
        s = Series("delay", x=[1, 2], y=[1, 2])
        with pytest.raises(KeyError):
            s.at(5)

    def test_monotonicity_checks(self):
        inc = Series("a", x=[0, 1, 2], y=[1, 2, 3])
        dec = Series("b", x=[0, 1, 2], y=[3, 2, 1])
        flat = Series("c", x=[0, 1], y=[2, 2])
        assert inc.is_monotone_increasing(strict=True)
        assert dec.is_monotone_decreasing(strict=True)
        assert flat.is_monotone_increasing() and flat.is_monotone_decreasing()
        assert not flat.is_monotone_increasing(strict=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            Series("bad", x=[1, 2], y=[1])
        with pytest.raises(ValueError):
            Series("empty", x=[], y=[])
        with pytest.raises(ValueError):
            Series("2d", x=np.zeros((2, 2)), y=np.zeros(4))


class TestTable:
    def test_basic(self):
        t = Table("t", columns={"a": np.asarray([1, 2]), "b": np.asarray([3, 4])})
        assert t.n_rows == 2
        assert t.column("a").tolist() == [1, 2]

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Table("t", columns={"a": np.asarray([1]), "b": np.asarray([1, 2])})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Table("t", columns={})


class TestExperimentResult:
    def test_get_series(self):
        r = ExperimentResult(
            "x", "t", series=[Series("a", [1], [2]), Series("b", [1], [3])]
        )
        assert r.get_series("b").y.tolist() == [3]
        assert r.labels() == ["a", "b"]

    def test_missing_series(self):
        r = ExperimentResult("x", "t")
        with pytest.raises(KeyError):
            r.get_series("nope")
