"""Streaming accumulators vs the materialized path.

The contract under test (DESIGN.md "Sharded execution"): streaming
moments/CIs match ``analysis.stats`` to floating-point round-off
(identical in exact arithmetic), quantile sketches are exact below
capacity and within their documented rank error above it, and merging
per-shard accumulators equals accumulating the unsharded stream.
"""

import math

import numpy as np
import pytest

from repro.analysis.stats import mean_ci
from repro.analysis.streaming import (
    QuantileSketch,
    RunAccumulator,
    StreamingMoments,
    VectorNanMean,
    accumulate,
)

REL = 1e-12  # round-off envelope for "exact in exact arithmetic"


def close(a, b):
    return math.isclose(a, b, rel_tol=REL, abs_tol=1e-12)


@pytest.fixture
def rng():
    return np.random.default_rng(2011)


class TestStreamingMoments:
    def test_matches_numpy_mean_and_variance(self, rng):
        xs = rng.normal(50.0, 12.0, size=997)
        m = StreamingMoments()
        for x in xs:
            m.add(x)
        assert m.n == xs.size
        assert close(m.mean, float(xs.mean()))
        assert close(m.variance(), float(xs.var(ddof=1)))

    def test_ci_matches_mean_ci(self, rng):
        for n in (2, 3, 17, 400):
            xs = rng.exponential(30.0, size=n)
            m = StreamingMoments()
            m.add_many(xs)
            want = mean_ci(xs)
            got = m.ci()
            assert close(got.mean, want.mean)
            assert close(got.lower, want.lower)
            assert close(got.upper, want.upper)
            assert got.n == want.n and got.confidence == want.confidence

    def test_skips_non_finite_like_clean(self, rng):
        xs = [1.0, float("nan"), 2.0, float("inf"), 3.0, float("-inf")]
        m = StreamingMoments()
        for x in xs:
            m.add(x)
        assert m.n == 3 and close(m.mean, 2.0)
        want = mean_ci(xs)  # _clean drops the same samples
        assert close(m.ci().mean, want.mean)

    def test_empty_ci_raises_like_mean_ci(self):
        with pytest.raises(ValueError, match="no finite samples"):
            StreamingMoments().ci()
        with pytest.raises(ValueError, match="no finite samples"):
            mean_ci([float("nan")])

    def test_single_sample_degenerates_to_point(self):
        m = StreamingMoments()
        m.add(42.0)
        ci = m.ci()
        assert ci.lower == ci.mean == ci.upper == 42.0
        assert math.isnan(m.variance())

    def test_merge_equals_pooled_stream(self, rng):
        xs = rng.normal(0.0, 5.0, size=1000)
        whole = StreamingMoments()
        whole.add_many(xs)
        for cut in (1, 137, 500, 999):
            a, b = StreamingMoments(), StreamingMoments()
            a.add_many(xs[:cut])
            b.add_many(xs[cut:])
            a.merge(b)
            assert a.n == whole.n
            assert close(a.mean, whole.mean)
            assert close(a.variance(), whole.variance())

    def test_merge_with_empty_is_identity(self, rng):
        m = StreamingMoments()
        m.add_many(rng.normal(size=10))
        before = (m.n, m.mean, m.variance())
        m.merge(StreamingMoments())
        assert (m.n, m.mean, m.variance()) == before
        fresh = StreamingMoments()
        fresh.merge(m)
        assert fresh.n == m.n and close(fresh.mean, m.mean)

    def test_add_many_equals_sequential_adds(self, rng):
        xs = rng.uniform(-10, 10, size=321)
        a, b = StreamingMoments(), StreamingMoments()
        a.add_many(xs)
        for x in xs:
            b.add(x)
        assert a.n == b.n
        assert close(a.mean, b.mean) and close(a.variance(), b.variance())


class TestVectorNanMean:
    def test_matches_nanmean_stacking(self, rng):
        curves = rng.normal(100.0, 20.0, size=(7, 12))
        curves[rng.random(curves.shape) < 0.3] = np.nan
        curves[:, 5] = np.nan  # one packet never delivered anywhere
        v = VectorNanMean()
        for c in curves:
            v.add(c)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN column
            want = np.nanmean(curves, axis=0)
        got = v.result()
        assert np.allclose(got, want, rtol=REL, equal_nan=True)

    def test_merge_equals_pooled(self, rng):
        curves = rng.normal(size=(9, 6))
        curves[rng.random(curves.shape) < 0.4] = np.nan
        whole, a, b = VectorNanMean(), VectorNanMean(), VectorNanMean()
        for c in curves:
            whole.add(c)
        for c in curves[:4]:
            a.add(c)
        for c in curves[4:]:
            b.add(c)
        a.merge(b)
        assert np.allclose(a.result(), whole.result(), rtol=REL,
                           equal_nan=True)

    def test_empty_result_and_length_mismatch(self):
        assert VectorNanMean().result().size == 0
        v = VectorNanMean()
        v.add([1.0, 2.0])
        with pytest.raises(ValueError, match="length"):
            v.add([1.0, 2.0, 3.0])


class TestQuantileSketch:
    def test_exact_below_capacity(self, rng):
        xs = rng.exponential(40.0, size=500)
        s = QuantileSketch(capacity=512)
        s.add_many(xs)
        assert s.is_exact
        for q in (0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert close(s.quantile(q), float(np.quantile(xs, q)))

    @pytest.mark.parametrize("dist", ["normal", "exponential", "uniform"])
    def test_rank_error_within_documented_bound(self, rng, dist):
        xs = getattr(rng, dist)(size=100_000)
        s = QuantileSketch(capacity=512)
        s.add_many(xs)
        assert not s.is_exact  # the bound is doing real work here
        xs_sorted = np.sort(xs)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            est = s.quantile(q)
            rank = np.searchsorted(xs_sorted, est) / xs.size
            assert abs(rank - q) <= s.rank_error, (dist, q, rank)

    def test_merge_covers_union_stream(self, rng):
        xs = rng.normal(size=40_000)
        shards = [QuantileSketch(capacity=512) for _ in range(4)]
        for i, shard in enumerate(shards):
            shard.add_many(xs[i::4])
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert merged.n == xs.size
        xs_sorted = np.sort(xs)
        for q in (0.1, 0.5, 0.9):
            rank = np.searchsorted(xs_sorted, merged.quantile(q)) / xs.size
            assert abs(rank - q) <= merged.rank_error

    def test_deterministic(self, rng):
        xs = rng.normal(size=10_000)
        a, b = QuantileSketch(), QuantileSketch()
        a.add_many(xs)
        b.add_many(xs)
        assert a.quantile(0.5) == b.quantile(0.5)
        assert a._levels == b._levels

    def test_skips_non_finite(self):
        s = QuantileSketch()
        s.add(float("nan"))
        s.add(float("inf"))
        s.add(1.0)
        assert s.n == 1 and s.quantile(0.5) == 1.0

    def test_empty_is_nan_and_bad_q_raises(self):
        s = QuantileSketch()
        assert math.isnan(s.quantile(0.5))
        with pytest.raises(ValueError, match="quantile"):
            s.quantile(1.5)


@pytest.fixture(scope="module")
def summary():
    """One multi-replication run (non-degenerate CI, real metrics)."""
    from repro.net.generators import line_topology
    from repro.sim.runner import ExperimentSpec, run_experiment

    topo = line_topology(8, prr=0.85)
    spec = ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=3,
                          seed=11, n_replications=6)
    return run_experiment(topo, spec)


class TestRunAccumulator:
    def test_matches_run_summary(self, summary):
        acc = RunAccumulator()
        acc.add_summary(summary)
        assert acc.n_runs == summary.n_runs
        assert close(acc.mean_delay(), summary.mean_delay())
        assert close(acc.completion_rate(), summary.completion_rate())
        assert close(acc.mean_failures(), summary.mean_failures())
        assert close(acc.mean_collisions(), summary.mean_collisions())
        assert close(acc.mean_tx_attempts(), summary.mean_tx_attempts())
        want_ci = summary.delay_ci()
        got_ci = acc.delay_ci()
        assert close(got_ci.mean, want_ci.mean)
        assert close(got_ci.lower, want_ci.lower)
        assert close(got_ci.upper, want_ci.upper)
        assert got_ci.n == want_ci.n
        assert np.allclose(acc.per_packet_delay(),
                           summary.per_packet_delay(), rtol=REL,
                           equal_nan=True)

    def test_quantiles_exact_at_cell_scale(self, summary):
        acc = RunAccumulator()
        acc.add_summary(summary)
        assert acc.packet_delays.is_exact  # 18 delays << capacity
        delays = np.concatenate([
            r.metrics.delays.total_delay().astype(np.float64)
            for r in summary.results
        ])
        delays = delays[delays >= 0]
        assert close(acc.delay_quantile(0.5), float(np.quantile(delays, 0.5)))

    def test_sharded_merge_equals_whole(self, summary):
        whole = RunAccumulator()
        whole.add_summary(summary)
        a, b = RunAccumulator(), RunAccumulator()
        for r in summary.results[:2]:
            a.add(r)
        for r in summary.results[2:]:
            b.add(r)
        a.merge(b)
        assert a.n_runs == whole.n_runs
        assert close(a.mean_delay(), whole.mean_delay())
        assert close(a.delay_ci().upper, whole.delay_ci().upper)
        assert np.allclose(a.per_packet_delay(), whole.per_packet_delay(),
                           rtol=REL, equal_nan=True)
        assert a.delay_quantile(0.5) == whole.delay_quantile(0.5)

    def test_accumulate_helper(self, summary):
        acc = accumulate([summary, summary])
        assert acc.n_runs == 2 * summary.n_runs


class TestParityOnCommittedExampleGrids:
    """Welford mean/CI match ``analysis.stats`` on every example grid."""

    @pytest.fixture(scope="class")
    def example_grids(self):
        from pathlib import Path

        from repro.scenario import load_scenario_file
        from repro.sim.runner import run_scenarios

        root = Path(__file__).resolve().parents[2] / "examples"
        out = {}
        for path in sorted(root.glob("*.json")):
            if path.name.endswith(".expected.json"):
                continue
            grid = load_scenario_file(path)
            out[path.name] = (grid, run_scenarios(grid.scenarios()))
        return out

    def test_every_committed_grid(self, example_grids):
        assert example_grids  # the glob found the example files
        for name, (grid, summaries) in example_grids.items():
            for summary in summaries:
                acc = RunAccumulator()
                acc.add_summary(summary)
                assert close(acc.mean_delay(), summary.mean_delay()), name
                assert close(acc.completion_rate(),
                             summary.completion_rate()), name
                assert close(acc.mean_failures(),
                             summary.mean_failures()), name
                assert close(acc.mean_tx_attempts(),
                             summary.mean_tx_attempts()), name
                want = summary.delay_ci()
                got = acc.delay_ci()
                assert close(got.mean, want.mean), name
                assert close(got.lower, want.lower), name
                assert close(got.upper, want.upper), name
                assert np.allclose(acc.per_packet_delay(),
                                   summary.per_packet_delay(),
                                   rtol=REL, equal_nan=True), name
