"""Tests for the shape-audit machinery."""

import numpy as np
import pytest

from repro.analysis.series import ExperimentResult, Series
from repro.analysis.shapes import CHECKS, ShapeCheck, audit
from repro.experiments import run_experiment_by_id


def _fig10_result(opt, dbao, of, bound, duties=(0.05, 0.2)):
    x = np.asarray(duties)
    return ExperimentResult(
        "fig10", "synthetic",
        series=[
            Series("opt: avg delay", x, np.asarray(opt)),
            Series("dbao: avg delay", x, np.asarray(dbao)),
            Series("of: avg delay", x, np.asarray(of)),
            Series("predicted lower bound", x, np.asarray(bound)),
        ],
    )


class TestAuditMechanics:
    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            audit({"fig99": _fig10_result([2, 1], [3, 2], [4, 3], [1, 0.5])})

    def test_good_fig10_passes(self):
        checks = audit({
            "fig10": _fig10_result([200, 100], [400, 300], [600, 500],
                                   [100, 50])
        })
        assert all(c.passed for c in checks)

    def test_ordering_violation_detected(self):
        # DBAO faster than OPT -> the OPT <= DBAO claim must fail.
        checks = audit({
            "fig10": _fig10_result([500, 400], [300, 200], [600, 500],
                                   [100, 50])
        })
        failed = [c for c in checks if not c.passed]
        assert any("OPT <= DBAO" in c.claim for c in failed)

    def test_bound_violation_detected(self):
        checks = audit({
            "fig10": _fig10_result([200, 100], [400, 300], [600, 500],
                                   [300, 200])
        })
        failed = [c for c in checks if not c.passed]
        assert any("prediction below OPT" in c.claim for c in failed)


class TestAgainstRealExperiments:
    def test_theory_experiments_pass_their_shapes(self):
        results = {
            eid: run_experiment_by_id(eid, scale="smoke")
            for eid in ("fig5", "fig6", "fig7")
        }
        checks = audit(results)
        failed = [c for c in checks if not c.passed]
        assert not failed, failed

    def test_gain_passes(self):
        checks = audit({"gain": run_experiment_by_id("gain", scale="smoke")})
        assert all(c.passed for c in checks)

    def test_skew_passes(self):
        checks = audit({"skew": run_experiment_by_id("skew", scale="smoke")})
        assert all(c.passed for c in checks)

    def test_every_registered_check_has_a_runner(self):
        from repro.experiments import experiment_ids

        ids = set(experiment_ids())
        assert set(CHECKS) <= ids
