"""Tests for theory-vs-simulation validation helpers."""

import numpy as np
import pytest

from repro.analysis.validate import (
    analytic_lower_bound,
    dominance_holds,
    knee_index,
    relative_spread,
    respects_lower_bound,
)
from repro.core.linkloss import recurrence_hitting_time
from repro.net.generators import line_topology


class TestAnalyticLowerBound:
    def test_perfect_chain_matches_recurrence(self, line5):
        bound = analytic_lower_bound(line5, duty_ratio=0.2)
        assert bound == recurrence_hitting_time(4, 1.0, 5)

    def test_lossier_network_higher_bound(self, line5, lossy_line5):
        assert analytic_lower_bound(lossy_line5, 0.1) > analytic_lower_bound(
            line5, 0.1
        )

    def test_lower_duty_higher_bound(self, line5):
        assert analytic_lower_bound(line5, 0.05) > analytic_lower_bound(line5, 0.2)

    def test_duty_validation(self, line5):
        with pytest.raises(ValueError):
            analytic_lower_bound(line5, 0.0)


class TestRespectsLowerBound:
    def test_basic(self):
        assert respects_lower_bound(100.0, 80.0)
        assert not respects_lower_bound(50.0, 80.0)

    def test_tolerance(self):
        assert respects_lower_bound(76.0, 80.0, tolerance=0.1)

    def test_nan_fails(self):
        assert not respects_lower_bound(float("nan"), 10.0)


class TestDominance:
    def test_ordering_respected(self):
        delays = {"opt": 100.0, "dbao": 150.0, "of": 300.0}
        assert dominance_holds(delays, ("opt", "dbao", "of"))

    def test_violation_detected(self):
        delays = {"opt": 100.0, "dbao": 90.0, "of": 300.0}
        assert not dominance_holds(delays, ("opt", "dbao", "of"), slack=1.0)

    def test_slack_absorbs_noise(self):
        delays = {"opt": 100.0, "dbao": 98.0}
        assert dominance_holds(delays, ("opt", "dbao"), slack=1.05)


class TestRelativeSpread:
    def test_constant_is_zero(self):
        assert relative_spread([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        assert relative_spread([1.0, 3.0]) == pytest.approx(1.0)

    def test_empty_is_inf(self):
        assert relative_spread([]) == float("inf")
        assert relative_spread([np.nan]) == float("inf")


class TestKneeIndex:
    def test_finds_synthetic_knee(self):
        # Ramp with slope 10 for 20 packets, then slope 1.
        y = np.concatenate([10.0 * np.arange(20), 200 + np.arange(30)])
        knee = knee_index(y)
        assert knee is not None
        assert 10 <= knee <= 30

    def test_pure_line_no_knee(self):
        y = 5.0 * np.arange(60)
        assert knee_index(y) is None

    def test_too_short_returns_none(self):
        assert knee_index(np.arange(5)) is None

    def test_flat_curve_no_knee(self):
        assert knee_index(np.full(60, 7.0)) is None
