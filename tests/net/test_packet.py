"""Tests for packets, FCFS buffers, and workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import FcfsBuffer, FloodWorkload, Packet


class TestPacket:
    def test_ordering_by_index(self):
        assert Packet(0) < Packet(1)
        assert sorted([Packet(2), Packet(0)])[0].index == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(-1)
        with pytest.raises(ValueError):
            Packet(0, generated_at=-5)


class TestFcfsBuffer:
    def test_arrival_order_preserved(self):
        buf = FcfsBuffer()
        buf.add(5, slot=10)
        buf.add(2, slot=12)
        buf.add(9, slot=15)
        assert buf.packets == [5, 2, 9]

    def test_head_for_respects_fcfs_not_index(self):
        # The head is the earliest *arrived*, not the smallest index.
        buf = FcfsBuffer()
        buf.add(7, slot=1)
        buf.add(3, slot=2)
        assert buf.head_for({3, 7}) == 7
        assert buf.head_for({3}) == 3

    def test_head_for_empty_need(self):
        buf = FcfsBuffer()
        buf.add(0, slot=0)
        assert buf.head_for(set()) is None
        assert buf.head_for({5}) is None

    def test_duplicates_ignored(self):
        buf = FcfsBuffer()
        assert buf.add(1, slot=3)
        assert not buf.add(1, slot=9)
        assert buf.arrival_slot(1) == 3
        assert len(buf) == 1

    def test_contains_and_arrival(self):
        buf = FcfsBuffer()
        buf.add(4, slot=2)
        assert 4 in buf
        assert 5 not in buf
        with pytest.raises(KeyError):
            buf.arrival_slot(5)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 100)),
                    min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_head_is_earliest_needed(self, arrivals):
        # Sort by slot so arrivals are time-ordered, dedupe packet ids.
        arrivals = sorted(arrivals, key=lambda pair: pair[1])
        buf = FcfsBuffer()
        first_arrival = {}
        for pkt, slot in arrivals:
            if buf.add(pkt, slot):
                first_arrival[pkt] = slot
        needed = set(list(first_arrival)[::2])
        head = buf.head_for(needed)
        if not needed:
            assert head is None
        else:
            assert head in needed
            # No needed packet arrived strictly earlier in buffer order.
            order = buf.packets
            assert all(order.index(head) <= order.index(p) for p in needed)


class TestFloodWorkload:
    def test_back_to_back_default(self):
        wl = FloodWorkload(5)
        assert wl.generation_slots().tolist() == [0, 0, 0, 0, 0]

    def test_spaced_generation(self):
        wl = FloodWorkload(4, generation_interval=10)
        assert wl.generation_slots().tolist() == [0, 10, 20, 30]
        assert wl.generation_slot(2) == 20

    def test_packets_materialized(self):
        packets = FloodWorkload(3, generation_interval=5).packets()
        assert [p.index for p in packets] == [0, 1, 2]
        assert packets[2].generated_at == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            FloodWorkload(0)
        with pytest.raises(ValueError):
            FloodWorkload(3, generation_interval=-1)
        with pytest.raises(IndexError):
            FloodWorkload(3).generation_slot(3)
