"""The layered link stack: LinkModel contract and 802.15.4 CSMA-CA.

Covers the MAC registry, the ideal link's bit-identity with the raw
resolvers, the CSMA-CA state machine's observable behaviour on
hand-built topologies, the carrier-sense selector's edge cases, and the
serial <-> batched equivalence of the real MAC through the runner.
"""

import numpy as np
import pytest

from repro.net.generators import random_geometric_topology
from repro.net.mac import (
    MAC_KINDS,
    MAC_PARAMS,
    Csma802154Link,
    IdealCsmaLink,
    make_link_model,
)
from repro.net.radio import (
    RadioModel,
    Transmission,
    TxBatch,
    csma_select,
    csma_select_reps,
    resolve_slot,
    resolve_slot_reps,
)
from repro.net.topology import Topology
from repro.scenario import Scenario
from repro.sim.runner import run_replication, run_replication_chunk


def _no_capture():
    return RadioModel(capture_guard=1.0, capture_margin_db=None,
                      capture_ratio=None)


class TestRegistry:
    def test_kinds_and_params_agree(self):
        assert set(MAC_KINDS) == set(MAC_PARAMS) == {"ideal", "csma_802154"}

    def test_make_by_kind(self):
        assert isinstance(make_link_model("ideal"), IdealCsmaLink)
        link = make_link_model("csma_802154", mac_min_be=2)
        assert isinstance(link, Csma802154Link)
        assert link.mac_min_be == 2
        assert link.params["mac_min_be"] == 2

    def test_unknown_kind_lists_valid(self):
        with pytest.raises(ValueError, match="csma_802154"):
            make_link_model("tdma")

    @pytest.mark.parametrize("kwargs", [
        {"mac_min_be": 6, "mac_max_be": 5},   # min > max
        {"mac_max_be": 9},                    # above the 802.15.4 bound
        {"mac_min_be": -1},
        {"max_csma_backoffs": -1},
        {"max_frame_retries": -2},
        {"ack_wait_rounds": -1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Csma802154Link(**kwargs)

    def test_repr_echoes_params(self):
        assert "max_frame_retries=1" in repr(
            Csma802154Link(max_frame_retries=1))


class TestIdealLinkBitIdentity:
    """The extracted layer must be the old code path, draw for draw."""

    def test_serial_matches_raw_resolver(self, lossy_line5):
        batch = [Transmission(0, 1, 0), Transmission(2, 3, 0)]
        raw = resolve_slot(batch, lossy_line5, awake=[1, 3],
                           rng=np.random.default_rng(99))
        layered = IdealCsmaLink().resolve(
            TxBatch.from_transmissions(batch), lossy_line5, [1, 3],
            np.random.default_rng(99), RadioModel(),
        )
        assert layered.receptions == raw.receptions
        assert layered.failures == raw.failures
        assert layered.collisions == raw.collisions

    def test_batched_matches_raw_resolver(self, lossy_line5):
        kk = np.array([0, 0, 1], dtype=np.int64)
        ss = np.array([0, 2, 0], dtype=np.int64)
        rr = np.array([1, 3, 1], dtype=np.int64)
        pp = np.zeros(3, dtype=np.int64)
        awake = {0: np.array([1, 3]), 1: np.array([1])}
        raw = resolve_slot_reps(
            kk, ss, rr, pp, lossy_line5, awake,
            [np.random.default_rng(5), np.random.default_rng(6)],
        )
        layered = IdealCsmaLink().resolve_reps(
            kk, ss, rr, pp, lossy_line5, awake,
            [np.random.default_rng(5), np.random.default_rng(6)],
            RadioModel(),
        )
        for f in ("rec_rep", "rec_receiver", "rec_sender", "rec_packet",
                  "rec_overheard", "fail_rep", "fail_sender"):
            assert np.array_equal(getattr(layered, f), getattr(raw, f))
        assert layered.collision_counts == raw.collision_counts


class TestCsmaSerialBehaviour:
    def test_perfect_link_delivers_first_exchange(self, line5):
        out = Csma802154Link().resolve(
            TxBatch.from_transmissions([Transmission(0, 1, 0)]), line5,
            [1], np.random.default_rng(0), RadioModel(),
        )
        assert [r.receiver for r in out.receptions] == [1]
        assert out.failures == [] and out.collisions == []

    def test_deferred_sender_recovers_within_the_slot(self):
        # Senders 0 and 1 hear each other; their receivers (2 and 3) are
        # private. CCA serializes them into different micro-rounds, and
        # both frames deliver inside one wake slot.
        prr = np.zeros((4, 4))
        prr[0, 1] = prr[1, 0] = 0.9   # mutual audibility
        prr[0, 2] = prr[1, 3] = 1.0
        topo = Topology(prr)
        batch = TxBatch.from_transmissions(
            [Transmission(0, 2, 0), Transmission(1, 3, 0)])
        out = Csma802154Link().resolve(
            batch, topo, [2, 3], np.random.default_rng(3), RadioModel(),
        )
        assert sorted(r.receiver for r in out.receptions) == [2, 3]
        assert out.failures == []

    def test_sleeping_receiver_exhausts_retries(self, line5):
        out = Csma802154Link(max_frame_retries=1).resolve(
            TxBatch.from_transmissions([Transmission(0, 1, 0)]), line5,
            [], np.random.default_rng(0), RadioModel(),
        )
        assert out.receptions == []
        # The frame fails exactly once at the slot level, however many
        # physical attempts the MAC burned.
        assert out.failures == [Transmission(0, 1, 0)]
        assert out.collisions == []

    @pytest.mark.parametrize("seed", range(8))
    def test_hidden_terminals_keep_frame_accounting(self, seed):
        # 0 and 1 cannot hear each other but share receiver 2: classic
        # hidden pair. Whatever the backoff draws do, the slot outcome
        # stays frame-consistent: at most one decode at 2, every frame
        # delivered or failed exactly once, collisions a subset of
        # failures (each failed frame listed at most once).
        prr = np.zeros((3, 3))
        prr[0, 2] = prr[1, 2] = 1.0
        topo = Topology(prr)
        batch = TxBatch.from_transmissions(
            [Transmission(0, 2, 0), Transmission(1, 2, 1)])
        out = Csma802154Link().resolve(
            batch, topo, [2], np.random.default_rng(seed), _no_capture(),
        )
        addressed = [r for r in out.receptions if not r.overheard]
        assert len(addressed) <= 1
        assert len(addressed) + len(out.failures) == 2
        fail_set = {(t.sender, t.receiver) for t in out.failures}
        coll_list = [(t.sender, t.receiver) for t in out.collisions]
        assert len(coll_list) == len(set(coll_list))
        assert set(coll_list) <= fail_set

    def test_absorbed_collision_does_not_surface(self):
        # A narrow backoff window (BE=1 -> backoff in {0, 1}) makes the
        # hidden pair collide often but desynchronize on retries, so
        # across seeds plenty of frames collide first and deliver later.
        # A frame that collided but was ultimately delivered must NOT be
        # reported as a collision — the flood-level invariant is
        # collisions are a subset of failures.
        prr = np.zeros((3, 3))
        prr[0, 2] = prr[1, 2] = 1.0
        topo = Topology(prr)
        batch = TxBatch.from_transmissions(
            [Transmission(0, 2, 0), Transmission(1, 2, 1)])
        delivered_once = False
        for seed in range(16):
            out = Csma802154Link(mac_min_be=1, mac_max_be=2).resolve(
                batch, topo, [2], np.random.default_rng(seed),
                _no_capture(),
            )
            fail_set = {(t.sender, t.receiver) for t in out.failures}
            assert {(t.sender, t.receiver)
                    for t in out.collisions} <= fail_set
            delivered_once |= bool(out.receptions)
        assert delivered_once  # retries did rescue some seeds


class TestCsmaSelectEdgeCases:
    def test_empty_contender_set(self, line5):
        assert csma_select([], line5) == ([], {})

    def test_single_contender_always_wins(self, line5):
        winners, deferrals = csma_select([3], line5)
        assert winners == [3]
        assert deferrals == {3: []}  # nobody deferred to it

    def test_rank_tie_breaks_on_input_order(self, line5):
        # Adjacent (mutually audible) senders with no other ordering
        # information: the earlier-ranked input wins, whichever id it is.
        assert csma_select([1, 2], line5)[0] == [1]
        assert csma_select([2, 1], line5)[0] == [2]

    def test_all_zero_prr_rows_transmit_in_parallel(self):
        # Nobody can hear anybody: carrier sense never defers.
        topo = Topology(np.zeros((4, 4)))
        winners, deferrals = csma_select([2, 0, 3], topo)
        assert winners == [2, 0, 3]
        assert all(not d for d in deferrals.values())

    def test_reps_empty(self, line5):
        out = csma_select_reps(
            np.empty(0, np.int64), np.empty(0, np.int64), line5)
        assert out.size == 0

    def test_reps_matches_serial_per_group(self, small_rgg):
        rng = np.random.default_rng(17)
        groups, senders = [], []
        per_group = []
        for g in range(6):
            k = int(rng.integers(1, 9))
            cand = rng.choice(small_rgg.n_nodes, size=k, replace=False)
            groups.extend([g] * k)
            senders.extend(cand.tolist())
            per_group.append(cand.tolist())
        mask = csma_select_reps(
            np.array(groups, dtype=np.int64),
            np.array(senders, dtype=np.int64), small_rgg)
        flat = []
        for cand in per_group:
            winners, _ = csma_select(cand, small_rgg)
            wset = set(winners)
            flat.extend(s in wset for s in cand)
        assert mask.tolist() == flat

    def test_reps_tolerates_group_id_gaps(self, line5):
        # Groups 0 and 2 with no group 1 (a replication without ready
        # frames this round): each group is still independent.
        mask = csma_select_reps(
            np.array([0, 0, 2, 2], dtype=np.int64),
            np.array([1, 2, 2, 1], dtype=np.int64), line5)
        assert mask.tolist() == [True, False, True, False]


class TestRunnerEquivalence:
    """The real MAC through both engine paths, bit for bit."""

    @pytest.fixture(scope="class")
    def topo(self):
        return random_geometric_topology(
            30, area_m=180.0, rng=np.random.default_rng(7))

    @pytest.mark.parametrize("protocol", ["dbao", "naive"])
    def test_serial_matches_batched(self, topo, protocol):
        scenario = Scenario(
            protocol=protocol, duty_ratio=0.1, n_packets=2, seed=2011,
            n_replications=2, mac="csma_802154",
            sim={"max_slots": 4000},
        )
        serial = [run_replication(topo, scenario, rep) for rep in range(2)]
        batched = run_replication_chunk(topo, scenario, 0, 2)
        for a, b in zip(serial, batched):
            for f in ("tx_attempts", "tx_failures", "collisions",
                      "duplicates", "overhears", "elapsed_slots",
                      "sleep_misses"):
                assert getattr(a.metrics, f) == getattr(b.metrics, f)
            assert np.array_equal(a.has, b.has)
            assert np.array_equal(a.arrival, b.arrival)
            assert a.completed == b.completed
            # The FloodMetrics constructor enforces the subset invariant;
            # assert it visibly anyway — it is the MAC's contract.
            assert a.metrics.collisions <= a.metrics.tx_failures

    def test_mac_kwargs_reach_the_engine(self, topo):
        base = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                        seed=2011, mac="csma_802154",
                        sim={"max_slots": 4000})
        tweaked = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                           seed=2011, mac="csma_802154",
                           mac_kwargs={"max_frame_retries": 0,
                                       "max_csma_backoffs": 0},
                           sim={"max_slots": 4000})
        a = run_replication(topo, base, 0)
        b = run_replication(topo, tweaked, 0)
        # No-retry CSMA gives up frames the default keeps nursing; the
        # trajectories must differ (same seed, same substrate).
        assert (a.metrics.tx_failures != b.metrics.tx_failures
                or not np.array_equal(a.arrival, b.arrival))
