"""Tests for the semi-duplex radio: collisions, capture, loss, overhearing."""

import numpy as np
import pytest

from repro.net.generators import line_topology, star_topology
from repro.net.radio import (
    RadioModel,
    Transmission,
    TxBatch,
    carrier_sense_groups,
    csma_select,
    resolve_slot,
)
from repro.net.topology import Topology


def lossless():
    return RadioModel(lossless=True)


def no_capture():
    return RadioModel(lossless=True, capture_guard=1.0, capture_ratio=None,
                      capture_margin_db=None)


class TestTransmission:
    def test_validation(self):
        with pytest.raises(ValueError):
            Transmission(1, 1, 0)
        with pytest.raises(ValueError):
            Transmission(0, 1, -1)


class TestBasicDelivery:
    def test_single_tx_delivered(self, line5, rng):
        out = resolve_slot(
            [Transmission(0, 1, 0)], line5, awake=[1], rng=rng, model=lossless()
        )
        assert len(out.receptions) == 1
        rec = out.receptions[0]
        assert (rec.receiver, rec.sender, rec.packet, rec.overheard) == (1, 0, 0, False)
        assert out.n_failures == 0

    def test_sleeping_receiver_gets_nothing(self, line5, rng):
        out = resolve_slot(
            [Transmission(0, 1, 0)], line5, awake=[], rng=rng, model=lossless()
        )
        assert out.receptions == []
        assert out.n_failures == 1

    def test_out_of_range_never_delivers(self, line5, rng):
        out = resolve_slot(
            [Transmission(0, 3, 0)], line5, awake=[3], rng=rng, model=lossless()
        )
        assert out.receptions == []
        assert out.n_failures == 1

    def test_semi_duplex_sender_cannot_receive(self, line5, rng):
        # Node 1 transmits and is awake: it must not receive node 0's frame.
        out = resolve_slot(
            [Transmission(0, 1, 0), Transmission(1, 2, 1)],
            line5,
            awake=[1, 2],
            rng=rng,
            model=lossless(),
        )
        receivers = {r.receiver for r in out.receptions}
        assert 1 not in receivers
        assert 2 in receivers
        # Node 0's transmission to the busy node 1 failed.
        assert Transmission(0, 1, 0) in out.failures

    def test_two_tx_per_sender_rejected(self, line5, rng):
        with pytest.raises(ValueError):
            resolve_slot(
                [Transmission(0, 1, 0), Transmission(0, 1, 1)],
                line5, awake=[1], rng=rng,
            )


class TestLoss:
    def test_prr_zero_never_delivers(self, rng):
        # Construct an explicit lossy link at threshold.
        topo = line_topology(2, prr=0.5)
        deliveries = 0
        for _ in range(200):
            out = resolve_slot(
                [Transmission(0, 1, 0)], topo, awake=[1], rng=rng,
                model=RadioModel(),
            )
            deliveries += len(out.receptions)
        # Bernoulli(0.5): comfortably within [60, 140] of 200.
        assert 60 <= deliveries <= 140

    def test_lossless_overrides_prr(self, rng):
        topo = line_topology(2, prr=0.3)
        out = resolve_slot(
            [Transmission(0, 1, 0)], topo, awake=[1], rng=rng, model=lossless()
        )
        assert len(out.receptions) == 1

    def test_failures_counted_per_intended_receiver(self, lossy_line5):
        rng = np.random.default_rng(0)
        fails = 0
        for _ in range(100):
            out = resolve_slot(
                [Transmission(0, 1, 0)], lossy_line5, awake=[1], rng=rng
            )
            fails += out.n_failures
        assert 20 <= fails <= 60  # ~40% loss


class TestCollisions:
    def test_hidden_terminals_collide_without_capture(self, rng):
        # Star: 1 and 2 can't hear each other but both reach the hub... use
        # a topology where senders 1 and 3 both reach receiver 2 (line).
        topo = line_topology(4, prr=1.0)
        out = resolve_slot(
            [Transmission(1, 2, 0), Transmission(3, 2, 1)],
            topo, awake=[2], rng=rng, model=no_capture(),
        )
        assert out.receptions == []
        assert out.n_collisions == 2
        assert out.n_failures == 2

    def test_collision_free_oracle_decodes_best(self, rng):
        mat = np.zeros((4, 4))
        mat[1, 3] = 0.9
        mat[2, 3] = 0.5
        mat[3, 1] = mat[3, 2] = 0.5
        topo = Topology(mat)
        out = resolve_slot(
            [Transmission(1, 3, 0), Transmission(2, 3, 1)],
            topo, awake=[3], rng=rng,
            model=RadioModel(collisions=False, lossless=True),
        )
        assert len(out.receptions) == 1
        assert out.receptions[0].sender == 1  # best link wins

    def test_preamble_capture_sometimes_rescues(self):
        topo = line_topology(4, prr=1.0)
        rng = np.random.default_rng(7)
        model = RadioModel(lossless=True, capture_guard=0.3,
                           capture_margin_db=None, capture_ratio=None)
        got = 0
        for _ in range(300):
            out = resolve_slot(
                [Transmission(1, 2, 0), Transmission(3, 2, 1)],
                topo, awake=[2], rng=rng, model=model,
            )
            got += len(out.receptions)
        # P(|U1 - U2| >= 0.3) = 0.49: well within [90, 210] of 300.
        assert 90 <= got <= 210

    def test_sir_capture_lets_strong_frame_through(self, rng):
        # RSSI gap of 20 dB: the strong frame always survives.
        mat = np.zeros((3, 3))
        mat[0, 2] = 0.9
        mat[1, 2] = 0.5
        rssi = np.full((3, 3), -100.0)
        rssi[0, 2] = -60.0
        rssi[1, 2] = -80.0
        topo = Topology(mat, rssi=rssi)
        out = resolve_slot(
            [Transmission(0, 2, 0), Transmission(1, 2, 1)],
            topo, awake=[2], rng=rng,
            model=RadioModel(lossless=True, capture_guard=1.0),
        )
        assert len(out.receptions) == 1
        assert out.receptions[0].sender == 0

    def test_equal_power_no_sir_capture(self, rng):
        mat = np.zeros((3, 3))
        mat[0, 2] = mat[1, 2] = 0.9
        rssi = np.full((3, 3), -70.0)
        topo = Topology(mat, rssi=rssi)
        out = resolve_slot(
            [Transmission(0, 2, 0), Transmission(1, 2, 1)],
            topo, awake=[2], rng=rng,
            model=RadioModel(lossless=True, capture_guard=1.0),
        )
        assert out.receptions == []
        assert out.n_collisions == 2


class TestOverhearing:
    def test_third_party_overhears_when_enabled(self, rng):
        topo = star_topology(3, prr=1.0)  # hub 0 reaches 1, 2, 3
        out = resolve_slot(
            [Transmission(0, 1, 0)], topo, awake=[1, 2], rng=rng,
            model=RadioModel(lossless=True, overhearing=True),
        )
        by_receiver = {r.receiver: r for r in out.receptions}
        assert not by_receiver[1].overheard
        assert by_receiver[2].overheard

    def test_overhearing_off_by_default(self, rng):
        # The paper's unicast model: bystanders receive nothing.
        topo = star_topology(3, prr=1.0)
        out = resolve_slot(
            [Transmission(0, 1, 0)], topo, awake=[1, 2], rng=rng,
            model=lossless(),
        )
        assert {r.receiver for r in out.receptions} == {1}

    def test_collision_free_channel_supports_overhearing(self, rng):
        # The oracle-style channel also honors data overhearing when the
        # model enables it (used by cross-layer variants).
        topo = star_topology(3, prr=1.0)
        out = resolve_slot(
            [Transmission(0, 1, 0)], topo, awake=[1, 2], rng=rng,
            model=RadioModel(collisions=False, lossless=True,
                             overhearing=True),
        )
        assert {r.receiver for r in out.receptions} == {1, 2}


class TestModelValidation:
    def test_guard_range(self):
        with pytest.raises(ValueError):
            RadioModel(capture_guard=0.0)
        with pytest.raises(ValueError):
            RadioModel(capture_guard=1.5)

    def test_margin_nonnegative(self):
        with pytest.raises(ValueError):
            RadioModel(capture_margin_db=-1.0)

    def test_ratio_at_least_one(self):
        with pytest.raises(ValueError):
            RadioModel(capture_ratio=0.5)


class TestCsmaSelect:
    def test_audible_senders_serialize(self, line5):
        winners, deferrals = csma_select([1, 2], line5)
        assert winners == [1]
        assert deferrals[1] == [2]

    def test_hidden_senders_both_transmit(self, line5):
        # 0 and 3 are out of range of each other on the chain.
        winners, _ = csma_select([0, 3], line5)
        assert winners == [0, 3]

    def test_rank_order_respected(self, line5):
        # First in ranked order wins within an audible pair.
        winners, _ = csma_select([2, 1], line5)
        assert winners == [2]

    def test_spatial_reuse_along_chain(self, line5):
        # 0 silences 1; 2 is audible to 1 but 1 is NOT transmitting, and 2
        # hears 0? On the chain 2 is not adjacent to 0 -> 2 transmits.
        winners, deferrals = csma_select([0, 1, 2], line5)
        assert winners == [0, 2]
        assert deferrals[0] == [1]

    def test_duplicate_rejected(self, line5):
        with pytest.raises(ValueError):
            csma_select([1, 1], line5)


class TestCarrierSenseGroups:
    def test_chain_is_one_group(self, line5):
        groups = carrier_sense_groups([0, 1, 2, 3], line5)
        assert groups == [[0, 1, 2, 3]]

    def test_disconnected_senders_split(self, line5):
        groups = carrier_sense_groups([0, 3], line5)
        assert groups == [[0], [3]]

    def test_duplicate_rejected(self, line5):
        with pytest.raises(ValueError):
            carrier_sense_groups([2, 2], line5)


class TestTxBatch:
    def test_round_trip(self):
        txs = [Transmission(0, 1, 0), Transmission(2, 1, 1)]
        batch = TxBatch.from_transmissions(txs)
        assert len(batch) == 2
        assert batch.senders.tolist() == [0, 2]
        assert batch.receivers.tolist() == [1, 1]
        assert batch.packets.tolist() == [0, 1]
        # from_transmissions caches the originals verbatim.
        assert batch.to_transmissions() is not None
        assert batch.to_transmissions()[0] is txs[0]
        assert list(batch) == txs

    def test_materialisation_from_arrays(self):
        batch = TxBatch([3, 1], [0, 0], [2, 2])
        assert batch.to_transmissions() == [
            Transmission(3, 0, 2), Transmission(1, 0, 2)
        ]
        assert batch == TxBatch.from_transmissions(batch.to_transmissions())

    def test_empty(self):
        batch = TxBatch.empty()
        assert len(batch) == 0
        assert not batch
        assert batch.to_transmissions() == []

    def test_validation(self):
        with pytest.raises(ValueError, match="must differ"):
            TxBatch([1], [1], [0])
        with pytest.raises(ValueError, match="non-negative"):
            TxBatch([0], [1], [-1])
        with pytest.raises(ValueError, match="equal length"):
            TxBatch([0, 1], [1], [0])
        with pytest.raises(ValueError, match="one-dimensional"):
            TxBatch([[0]], [[1]], [[0]])

    def test_resolve_slot_accepts_batch(self, line5, rng):
        txs = [Transmission(0, 1, 0), Transmission(2, 3, 0)]
        out_list = resolve_slot(
            txs, line5, awake=[1, 3], rng=np.random.default_rng(5),
            model=lossless(),
        )
        out_batch = resolve_slot(
            TxBatch.from_transmissions(txs), line5, awake=[1, 3],
            rng=np.random.default_rng(5), model=lossless(),
        )
        assert out_batch.receptions == out_list.receptions
        assert out_batch.failures == out_list.failures
        assert out_batch.collisions == out_list.collisions

    def test_resolve_slot_duplicate_sender_in_batch(self, line5, rng):
        batch = TxBatch([1, 1], [0, 2], [0, 0])
        with pytest.raises(ValueError, match="two transmissions"):
            resolve_slot(batch, line5, awake=[0, 2], rng=rng)

    def test_batch_equivalence_under_loss_and_collisions(self, rng):
        # Same seed, list vs batch input: identical trajectories through
        # jitter, capture, and Bernoulli draws.
        prr = np.zeros((5, 5))
        for a, b in [(0, 2), (1, 2), (0, 3), (3, 4), (2, 4)]:
            prr[a, b] = 0.6
            prr[b, a] = 0.6
        topo = Topology(prr)
        txs = [Transmission(0, 2, 0), Transmission(1, 2, 1),
               Transmission(3, 4, 0)]
        for seed in range(20):
            out_list = resolve_slot(
                txs, topo, awake=[2, 4], rng=np.random.default_rng(seed)
            )
            out_batch = resolve_slot(
                TxBatch.from_transmissions(txs), topo, awake=[2, 4],
                rng=np.random.default_rng(seed),
            )
            assert out_batch.receptions == out_list.receptions
            assert out_batch.failures == out_list.failures
            assert out_batch.collisions == out_list.collisions
