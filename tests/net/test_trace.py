"""Tests for the synthetic GreenOrbs trace."""

import numpy as np
import pytest

from repro.net.trace import (
    GreenOrbsConfig,
    load_trace,
    save_trace,
    synthesize_greenorbs,
    trace_statistics,
)

SMALL = GreenOrbsConfig(n_sensors=80, area_m=360.0, n_clusters=4)


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_greenorbs(seed=3, config=SMALL)
        b = synthesize_greenorbs(seed=3, config=SMALL)
        assert np.array_equal(a.prr, b.prr)

    def test_different_seeds_differ(self):
        a = synthesize_greenorbs(seed=3, config=SMALL)
        b = synthesize_greenorbs(seed=4, config=SMALL)
        assert not np.array_equal(a.prr, b.prr)

    def test_meets_coverage_target(self):
        topo = synthesize_greenorbs(seed=3, config=SMALL)
        stats = trace_statistics(topo)
        assert stats["source_coverage"] >= SMALL.coverage_target

    def test_sensor_count(self):
        topo = synthesize_greenorbs(seed=3, config=SMALL)
        assert topo.n_sensors == 80

    def test_realism_envelope(self):
        # The qualitative GreenOrbs profile the analysis depends on:
        # multihop, lossy with a substantial gray region, irregular degree.
        topo = synthesize_greenorbs(seed=3, config=SMALL)
        stats = trace_statistics(topo)
        assert stats["hop_diameter"] >= 3
        assert 0.1 <= stats["gray_fraction"] <= 0.7
        assert stats["mean_k_class"] > 1.1
        assert stats["max_degree"] > 2 * stats["mean_degree"] * 0.8

    def test_impossible_config_raises(self):
        # A huge area with few sensors cannot connect.
        bad = GreenOrbsConfig(
            n_sensors=10, area_m=5000.0, n_clusters=5, max_attempts=2
        )
        with pytest.raises(RuntimeError):
            synthesize_greenorbs(seed=1, config=bad)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GreenOrbsConfig(n_sensors=0)
        with pytest.raises(ValueError):
            GreenOrbsConfig(coverage_target=0.0)
        with pytest.raises(ValueError):
            GreenOrbsConfig(max_attempts=0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        topo = synthesize_greenorbs(seed=3, config=SMALL)
        path = tmp_path / "trace.npz"
        save_trace(topo, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.prr, topo.prr)
        assert np.array_equal(loaded.positions, topo.positions)
        assert np.array_equal(loaded.rssi, topo.rssi)
        assert loaded.neighbor_threshold == topo.neighbor_threshold

    def test_roundtrip_without_positions(self, tmp_path, line5):
        path = tmp_path / "line.npz"
        save_trace(line5, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.prr, line5.prr)
        assert loaded.rssi is None


class TestStatistics:
    def test_keys_present(self):
        topo = synthesize_greenorbs(seed=3, config=SMALL)
        stats = trace_statistics(topo)
        for key in (
            "n_sensors", "mean_degree", "prr_mean", "gray_fraction",
            "hop_diameter", "source_coverage", "mean_k_class",
        ):
            assert key in stats

    def test_on_simple_topology(self, line5):
        stats = trace_statistics(line5)
        assert stats["n_sensors"] == 4
        assert stats["source_coverage"] == pytest.approx(1.0)
        assert stats["prr_mean"] == pytest.approx(1.0)
        assert stats["gray_fraction"] == 0.0
