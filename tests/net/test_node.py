"""Tests for the object-level sensor node."""

import pytest

from repro.net.node import NodeEnergyCounters, SensorNode
from repro.net.schedule import WorkingSchedule


@pytest.fixture
def node():
    return SensorNode(3, WorkingSchedule.single(10, 4))


class TestSensorNode:
    def test_receive_and_duplicates(self, node):
        assert node.receive(0, slot=5)
        assert not node.receive(0, slot=9)
        assert node.has_packet(0)
        assert node.energy.rx_successes == 1

    def test_head_packet_fcfs(self, node):
        node.receive(4, slot=1)
        node.receive(1, slot=2)
        assert node.head_packet_for(set()) == 4
        assert node.head_packet_for({4}) == 1
        assert node.head_packet_for({1, 4}) is None

    def test_belief_tracking(self, node):
        assert not node.believes_neighbor_has(7, 0)
        node.note_neighbor_has(7, 0)
        assert node.believes_neighbor_has(7, 0)
        assert not node.believes_neighbor_has(7, 1)

    def test_schedule_helpers(self, node):
        assert node.is_active(4) and node.is_active(14)
        assert not node.is_active(5)
        assert node.next_wakeup(5) == 14

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNode(-1, WorkingSchedule.single(5, 0))


class TestEnergyCounters:
    def test_successes_derived(self):
        c = NodeEnergyCounters(tx_attempts=10, tx_failures=3)
        assert c.tx_successes == 7

    def test_merge(self):
        a = NodeEnergyCounters(tx_attempts=5, tx_failures=1, rx_successes=2,
                               radio_on_slots=100)
        b = NodeEnergyCounters(tx_attempts=3, tx_failures=2, rx_successes=1,
                               radio_on_slots=50)
        a.merge(b)
        assert (a.tx_attempts, a.tx_failures, a.rx_successes, a.radio_on_slots) == (
            8, 3, 3, 150
        )
