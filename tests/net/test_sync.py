"""Tests for the local-synchronization service."""

import numpy as np
import pytest

from repro.net.schedule import ScheduleTable
from repro.net.sync import LocalSyncService


@pytest.fixture
def service(line5, rng):
    schedules = ScheduleTable.random(5, 10, rng)
    return LocalSyncService(line5, schedules), schedules


class TestPerfectSync:
    def test_is_perfect_by_default(self, service):
        svc, _ = service
        assert svc.is_perfect

    def test_neighbor_knowledge_only(self, service):
        svc, _ = service
        assert svc.knows_schedule(0, 1)
        assert not svc.knows_schedule(0, 3)

    def test_non_neighbor_query_rejected(self, service):
        svc, _ = service
        with pytest.raises(PermissionError):
            svc.believed_offset(0, 3)

    def test_self_query_allowed(self, service):
        svc, schedules = service
        assert svc.believed_offset(2, 2) == int(schedules.offsets[2])

    def test_believed_matches_truth(self, service):
        svc, schedules = service
        for t in (0, 7, 23):
            planned = svc.believed_next_active(1, 2, t)
            assert planned == schedules.next_active(2, t)
            assert svc.wakeup_is_correct(1, 2, t)


class TestSkew:
    def test_skew_breaks_wakeups(self, line5, rng):
        schedules = ScheduleTable.random(5, 10, rng)
        skew = np.zeros(5, dtype=np.int64)
        skew[2] = 3  # node 2's clock runs 3 slots ahead
        svc = LocalSyncService(line5, schedules, skew_slots=skew)
        assert not svc.is_perfect
        # An observer with zero skew now mispredicts node 2's wake-ups.
        assert not svc.wakeup_is_correct(1, 2, 0)

    def test_common_mode_skew_is_harmless(self, line5, rng):
        # Everyone shifted equally: relative error is zero.
        schedules = ScheduleTable.random(5, 10, rng)
        svc = LocalSyncService(
            line5, schedules, skew_slots=np.full(5, 4, dtype=np.int64)
        )
        assert svc.wakeup_is_correct(1, 2, 0)

    def test_shape_validation(self, line5, rng):
        schedules = ScheduleTable.random(5, 10, rng)
        with pytest.raises(ValueError):
            LocalSyncService(line5, schedules, skew_slots=np.zeros(3, dtype=np.int64))

    def test_node_count_mismatch(self, line5, rng):
        schedules = ScheduleTable.random(4, 10, rng)
        with pytest.raises(ValueError):
            LocalSyncService(line5, schedules)
