"""Tests for link-quality models (k-class, RSSI->PRR chain)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.links import (
    LinkQuality,
    RadioParameters,
    distance_to_prr,
    expected_transmissions,
    k_class_to_prr,
    path_loss_db,
    prr_to_k_class,
    rssi_dbm,
    rssi_to_prr,
    snr_to_prr,
)


class TestKClass:
    @pytest.mark.parametrize(
        "prr,k", [(0.5, 2.0), (0.8, 1.25), (1.0, 1.0), (0.6, 1.0 / 0.6)]
    )
    def test_paper_legend_pairs(self, prr, k):
        # Fig. 7 legend: link quality q <-> expected transmissions 1/q.
        assert prr_to_k_class(prr) == pytest.approx(k)

    def test_roundtrip(self):
        for prr in (0.1, 0.35, 0.99, 1.0):
            assert k_class_to_prr(prr_to_k_class(prr)) == pytest.approx(prr)

    def test_etx_alias(self):
        assert expected_transmissions(0.25) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            prr_to_k_class(0.0)
        with pytest.raises(ValueError):
            prr_to_k_class(1.2)
        with pytest.raises(ValueError):
            k_class_to_prr(0.9)

    @given(st.floats(0.01, 1.0))
    @settings(max_examples=50)
    def test_k_at_least_one(self, prr):
        assert prr_to_k_class(prr) >= 1.0


class TestLinkQuality:
    def test_fields(self):
        lq = LinkQuality(prr=0.5, rssi_dbm=-80.0)
        assert lq.k_class == pytest.approx(2.0)
        assert lq.etx == pytest.approx(2.0)
        assert not lq.is_perfect

    def test_perfect(self):
        assert LinkQuality(prr=1.0).is_perfect

    def test_from_k_class(self):
        assert LinkQuality.from_k_class(2.0).prr == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkQuality(prr=0.0)


class TestPhysicalChain:
    def test_path_loss_increases_with_distance(self):
        p = RadioParameters()
        losses = path_loss_db(np.asarray([1.0, 10.0, 100.0]), p)
        assert losses[0] < losses[1] < losses[2]

    def test_path_loss_slope_matches_exponent(self):
        p = RadioParameters(path_loss_exponent=3.0)
        l10 = float(path_loss_db(10.0, p))
        l100 = float(path_loss_db(100.0, p))
        assert l100 - l10 == pytest.approx(30.0)  # 10 * eta per decade

    def test_distance_clamped_to_reference(self):
        p = RadioParameters()
        assert float(path_loss_db(0.01, p)) == pytest.approx(
            float(path_loss_db(p.reference_distance_m, p))
        )

    def test_rssi_decreases_with_distance(self):
        p = RadioParameters()
        assert float(rssi_dbm(10.0, p)) > float(rssi_dbm(60.0, p))

    def test_shadowing_shifts_rssi(self):
        p = RadioParameters()
        base = float(rssi_dbm(30.0, p))
        assert float(rssi_dbm(30.0, p, shadowing_db=6.0)) == pytest.approx(base + 6.0)

    def test_snr_to_prr_sigmoid(self):
        prr = snr_to_prr(np.asarray([-10.0, 6.0, 20.0]))
        assert prr[0] < 0.01
        assert 0.0 < prr[1] < 1.0
        assert prr[2] > 0.99

    def test_prr_monotone_in_snr(self):
        snrs = np.linspace(-10, 20, 40)
        prr = snr_to_prr(snrs)
        assert np.all(np.diff(prr) >= 0)

    def test_longer_frames_are_harder(self):
        snr = 5.0
        assert float(snr_to_prr(snr, frame_bytes=20)) > float(
            snr_to_prr(snr, frame_bytes=200)
        )

    def test_distance_to_prr_has_gray_region(self):
        # There must exist distances with intermediate PRR — the gray
        # region the GreenOrbs substitution relies on.
        p = RadioParameters()
        dists = np.linspace(1.0, 120.0, 400)
        prr = distance_to_prr(dists, p)
        assert prr[0] > 0.99
        assert prr[-1] < 0.01
        assert np.any((prr > 0.1) & (prr < 0.9))

    def test_rssi_to_prr_bounds(self):
        p = RadioParameters()
        vals = rssi_to_prr(np.asarray([-120.0, -80.0, -30.0]), p)
        assert np.all((vals >= 0) & (vals <= 1))

    def test_radio_parameters_validation(self):
        with pytest.raises(ValueError):
            RadioParameters(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            RadioParameters(reference_distance_m=0.0)
        with pytest.raises(ValueError):
            RadioParameters(shadowing_sigma_db=-1.0)
        with pytest.raises(ValueError):
            RadioParameters(frame_bytes=0)

    @given(st.floats(1.0, 200.0))
    @settings(max_examples=50)
    def test_prr_always_valid(self, dist):
        p = RadioParameters()
        prr = float(distance_to_prr(dist, p))
        assert 0.0 <= prr <= 1.0
