"""Tests for multi-active-slot schedule tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.multislot import MultiSlotScheduleTable
from repro.net.schedule import ScheduleTable


@pytest.fixture
def table(rng):
    return MultiSlotScheduleTable.random(8, 20, 3, rng)


class TestConstruction:
    def test_random_shape_and_duty(self, table):
        assert len(table) == 8
        assert table.slots_per_period == 3
        assert table.duty_ratio == pytest.approx(0.15)

    def test_duplicate_slots_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiSlotScheduleTable(10, np.asarray([[1, 1]]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MultiSlotScheduleTable(10, np.asarray([[0, 10]]))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MultiSlotScheduleTable.random(0, 10, 2, rng)
        with pytest.raises(ValueError):
            MultiSlotScheduleTable.random(5, 10, 11, rng)
        with pytest.raises(ValueError):
            MultiSlotScheduleTable(0, np.asarray([[0]]))

    def test_from_single_roundtrip(self, rng):
        single = ScheduleTable.random(6, 12, rng)
        multi = MultiSlotScheduleTable.from_single(single)
        for t in range(24):
            assert np.array_equal(multi.awake_at(t), single.awake_at(t))
        assert multi.duty_ratio == pytest.approx(single.duty_ratio)


class TestQueries:
    def test_awake_matches_offsets(self, table):
        for t in range(40):
            awake = set(table.awake_at(t).tolist())
            expected = {
                v for v in range(8)
                if (t % 20) in set(table.offsets_matrix[v].tolist())
            }
            assert awake == expected

    def test_is_active_consistent_with_awake(self, table):
        for t in (0, 7, 19, 33):
            awake = set(table.awake_at(t).tolist())
            for v in range(8):
                assert table.is_active(v, t) == (v in awake)

    def test_next_active_minimal(self, table):
        for v in range(8):
            for t in (0, 5, 17, 50):
                nxt = table.next_active(v, t)
                assert nxt >= t
                assert table.is_active(v, nxt)
                for u in range(t, nxt):
                    assert not table.is_active(v, u)

    def test_next_active_array_matches_scalar(self, table):
        for t in (0, 13, 27):
            arr = table.next_active_array(t)
            for v in range(8):
                assert arr[v] == table.next_active(v, t)

    def test_next_wake_after_strict_and_minimal(self, table):
        for t in (0, 5, 19, 20, 41):
            arr = table.next_wake_after(t)
            for v in range(8):
                nxt = int(arr[v])
                assert t < nxt <= t + table.period
                assert table.is_active(v, nxt)
                for u in range(t + 1, nxt):
                    assert not table.is_active(v, u)

    def test_next_wake_after_boundaries(self):
        # Node active at t itself must map to its *next* active slot,
        # which with multiple slots per period may be inside the same
        # period rather than a full period away.
        table = MultiSlotScheduleTable(6, np.asarray([[0, 3]]))
        assert table.next_wake_after(0)[0] == 3
        assert table.next_wake_after(3)[0] == 6
        assert table.next_wake_after(6)[0] == 9
        assert table.next_wake_after(2, nodes=np.array([0, 0])).tolist() == [3, 3]

    def test_schedule_of(self, table):
        ws = table.schedule_of(2)
        assert ws.period == 20
        assert ws.active_slots == frozenset(
            int(s) for s in table.offsets_matrix[2]
        )

    def test_offsets_shim_first_slot(self, table):
        assert np.array_equal(table.offsets, table.offsets_matrix[:, 0])

    @given(st.integers(1, 30), st.data())
    @settings(max_examples=40)
    def test_wakes_per_period_equal_a(self, period, data):
        a = data.draw(st.integers(1, period))
        rng = np.random.default_rng(7)
        table = MultiSlotScheduleTable.random(4, period, a, rng)
        for v in range(4):
            wakes = sum(table.is_active(v, t) for t in range(period))
            assert wakes == a


class TestEngineIntegration:
    def test_flood_completes_on_multislot(self, line5):
        from repro.net.packet import FloodWorkload
        from repro.protocols import make_protocol
        from repro.sim.engine import SimConfig, run_flood

        rng = np.random.default_rng(1)
        schedules = MultiSlotScheduleTable.random(5, 10, 2, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(2), make_protocol("dbao"),
            np.random.default_rng(2), SimConfig(coverage_target=1.0),
        )
        assert result.completed

    def test_experiment_registered(self):
        from repro.experiments import experiment_ids

        assert "slot-split" in experiment_ids()
