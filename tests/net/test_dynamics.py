"""Tests for Gilbert-Elliott link dynamics."""

import numpy as np
import pytest

from repro.net.dynamics import GilbertElliott
from repro.net.generators import line_topology


@pytest.fixture
def dyn(line5):
    return GilbertElliott(
        line5, p_good_to_bad=0.1, p_bad_to_good=0.3, bad_factor=0.2,
        rng=np.random.default_rng(0), start_stationary=False,
    )


class TestConstruction:
    def test_link_count_matches_adjacency(self, line5, dyn):
        assert dyn.n_links == int(line5.adjacency.sum())

    def test_validation(self, line5):
        with pytest.raises(ValueError):
            GilbertElliott(line5, p_good_to_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliott(line5, p_bad_to_good=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(line5, bad_factor=-0.1)

    def test_stationary_fraction(self, line5):
        dyn = GilbertElliott(line5, p_good_to_bad=0.02, p_bad_to_good=0.08)
        assert dyn.stationary_bad_fraction == pytest.approx(0.2)

    def test_long_run_scale(self, line5):
        dyn = GilbertElliott(
            line5, p_good_to_bad=0.02, p_bad_to_good=0.08, bad_factor=0.5
        )
        assert dyn.long_run_prr_scale() == pytest.approx(0.8 + 0.2 * 0.5)


class TestStateEvolution:
    def test_all_good_initially_when_not_stationary(self, dyn):
        assert dyn.bad_fraction() == 0.0
        assert dyn.gain(0, 1) == 1.0

    def test_gain_values(self, dyn):
        for _ in range(100):
            dyn.step()
        for s, r in ((0, 1), (1, 2), (2, 3)):
            assert dyn.gain(s, r) in (1.0, 0.2)

    def test_non_link_has_zero_gain(self, dyn):
        assert dyn.gain(0, 3) == 0.0
        assert dyn.effective_prr(0, 3) == 0.0

    def test_effective_prr_scales_nominal(self, line5):
        dyn = GilbertElliott(line5, bad_factor=0.25,
                             rng=np.random.default_rng(1),
                             start_stationary=False)
        assert dyn.effective_prr(0, 1) == pytest.approx(line5.link_prr(0, 1))

    def test_empirical_bad_fraction_converges(self, line5):
        dyn = GilbertElliott(
            line5, p_good_to_bad=0.05, p_bad_to_good=0.15,
            rng=np.random.default_rng(2), start_stationary=True,
        )
        fractions = []
        for _ in range(4000):
            dyn.step()
            fractions.append(dyn.bad_fraction())
        assert np.mean(fractions) == pytest.approx(
            dyn.stationary_bad_fraction, abs=0.08
        )

    def test_bursts_are_correlated(self, line5):
        # Consecutive-slot states of one link are positively correlated.
        dyn = GilbertElliott(
            line5, p_good_to_bad=0.05, p_bad_to_good=0.1,
            rng=np.random.default_rng(3), start_stationary=True,
        )
        states = []
        for _ in range(5000):
            dyn.step()
            states.append(dyn.gain(0, 1) < 1.0)
        states = np.asarray(states, dtype=float)
        a, b = states[:-1], states[1:]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.3


class TestAdvance:
    """``advance(k)`` must be bit-identical to ``k`` sequential steps.

    The engine's quiescence fast-forward replaces per-slot ``step()``
    calls with one block ``advance(k)``; if the final link states *or*
    the generator position diverged by a single draw, every later loss
    draw would differ and fast-forwarded trajectories would no longer
    match the slot-by-slot engine. Both are pinned here, including the
    degenerate symmetric (``p_gb == p_bg``) and always-toggle (``p = 1``)
    parameterizations that exercise the closed form's branches.
    """

    PARAMS = [
        (0.02, 0.1),    # paper-ish asymmetric, p_gb < p_bg
        (0.3, 0.05),    # asymmetric the other way, p_gb > p_bg
        (0.07, 0.07),   # symmetric: forcing band is empty
        (1.0, 1.0),     # every draw toggles: pure parity
    ]
    KS = [0, 1, 2, 3, 7, 64, 1001]

    @staticmethod
    def _pair(topo, p_gb, p_bg, seed):
        mk = lambda: GilbertElliott(
            topo, p_good_to_bad=p_gb, p_bad_to_good=p_bg, bad_factor=0.2,
            rng=np.random.default_rng(seed), start_stationary=True,
        )
        return mk(), mk()

    @pytest.mark.parametrize("p_gb,p_bg", PARAMS)
    @pytest.mark.parametrize("k", KS)
    def test_state_and_stream_match_sequential_steps(
        self, small_rgg, p_gb, p_bg, k
    ):
        stepped, jumped = self._pair(small_rgg, p_gb, p_bg, seed=11)
        for _ in range(k):
            stepped.step()
        jumped.advance(k)
        np.testing.assert_array_equal(stepped._bad, jumped._bad)
        # Downstream draws — the loss coins the engine flips after the
        # gap — must come from the same stream position.
        np.testing.assert_array_equal(
            stepped._rng.random(32), jumped._rng.random(32)
        )

    def test_interleaved_with_steps(self, small_rgg):
        # step/advance can alternate arbitrarily (the engine does).
        stepped, mixed = self._pair(small_rgg, 0.05, 0.2, seed=3)
        for _ in range(25):
            stepped.step()
        for _ in range(2):
            mixed.step()
        mixed.advance(9)
        mixed.step()
        mixed.advance(13)
        np.testing.assert_array_equal(stepped._bad, mixed._bad)
        np.testing.assert_array_equal(
            stepped._rng.random(8), mixed._rng.random(8)
        )

    def test_chunked_path_matches(self, small_rgg, monkeypatch):
        # Force the internal chunking (normally only hit on multi-day
        # gaps) by shrinking the row budget: the per-chunk block draws
        # must still consume the stream identically.
        from repro.net import dynamics as dyn_mod

        stepped, jumped = self._pair(small_rgg, 0.04, 0.12, seed=9)
        monkeypatch.setattr(dyn_mod, "_ADVANCE_BLOCK_DRAWS", 7 * jumped.n_links)
        k = 5000
        for _ in range(k):
            stepped.step()
        jumped.advance(k)
        np.testing.assert_array_equal(stepped._bad, jumped._bad)
        np.testing.assert_array_equal(
            stepped._rng.random(4), jumped._rng.random(4)
        )

    def test_negative_rejected(self, dyn):
        with pytest.raises(ValueError):
            dyn.advance(-1)

    def test_zero_is_noop(self, dyn):
        before = dyn._bad.copy()
        dyn.advance(0)
        np.testing.assert_array_equal(dyn._bad, before)
        # and consumed nothing from the stream
        probe = GilbertElliott(
            line_topology(4, prr=1.0), p_good_to_bad=0.1, p_bad_to_good=0.3,
            bad_factor=0.2, rng=np.random.default_rng(0),
            start_stationary=False,
        )
        np.testing.assert_array_equal(
            dyn._rng.random(4), probe._rng.random(4)
        )


class TestEngineIntegration:
    def test_flood_completes_under_bursts(self, line5):
        from repro.net.packet import FloodWorkload
        from repro.net.schedule import ScheduleTable
        from repro.protocols import make_protocol
        from repro.sim.engine import SimConfig, run_flood

        rng = np.random.default_rng(4)
        schedules = ScheduleTable.random(line5.n_nodes, 5, rng)
        dyn = GilbertElliott(line5, rng=np.random.default_rng(5))
        result = run_flood(
            line5, schedules, FloodWorkload(2), make_protocol("dbao"),
            np.random.default_rng(6),
            SimConfig(coverage_target=1.0, max_slots=100_000),
            dynamics=dyn,
        )
        assert result.completed

    def test_outage_blocks_link(self, line5):
        # bad_factor=0 and a permanently-bad link: nothing gets through.
        from repro.net.radio import RadioModel, Transmission, resolve_slot

        dyn = GilbertElliott(
            line5, p_good_to_bad=1.0, p_bad_to_good=1e-9, bad_factor=0.0,
            rng=np.random.default_rng(7), start_stationary=False,
        )
        dyn.step()  # everyone transitions to BAD
        rng = np.random.default_rng(8)
        out = resolve_slot(
            [Transmission(0, 1, 0)], line5, awake=[1], rng=rng,
            model=RadioModel(), dynamics=dyn,
        )
        assert out.receptions == []
        assert out.n_failures == 1
