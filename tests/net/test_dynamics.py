"""Tests for Gilbert-Elliott link dynamics."""

import numpy as np
import pytest

from repro.net.dynamics import GilbertElliott
from repro.net.generators import line_topology


@pytest.fixture
def dyn(line5):
    return GilbertElliott(
        line5, p_good_to_bad=0.1, p_bad_to_good=0.3, bad_factor=0.2,
        rng=np.random.default_rng(0), start_stationary=False,
    )


class TestConstruction:
    def test_link_count_matches_adjacency(self, line5, dyn):
        assert dyn.n_links == int(line5.adjacency.sum())

    def test_validation(self, line5):
        with pytest.raises(ValueError):
            GilbertElliott(line5, p_good_to_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliott(line5, p_bad_to_good=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(line5, bad_factor=-0.1)

    def test_stationary_fraction(self, line5):
        dyn = GilbertElliott(line5, p_good_to_bad=0.02, p_bad_to_good=0.08)
        assert dyn.stationary_bad_fraction == pytest.approx(0.2)

    def test_long_run_scale(self, line5):
        dyn = GilbertElliott(
            line5, p_good_to_bad=0.02, p_bad_to_good=0.08, bad_factor=0.5
        )
        assert dyn.long_run_prr_scale() == pytest.approx(0.8 + 0.2 * 0.5)


class TestStateEvolution:
    def test_all_good_initially_when_not_stationary(self, dyn):
        assert dyn.bad_fraction() == 0.0
        assert dyn.gain(0, 1) == 1.0

    def test_gain_values(self, dyn):
        for _ in range(100):
            dyn.step()
        for s, r in ((0, 1), (1, 2), (2, 3)):
            assert dyn.gain(s, r) in (1.0, 0.2)

    def test_non_link_has_zero_gain(self, dyn):
        assert dyn.gain(0, 3) == 0.0
        assert dyn.effective_prr(0, 3) == 0.0

    def test_effective_prr_scales_nominal(self, line5):
        dyn = GilbertElliott(line5, bad_factor=0.25,
                             rng=np.random.default_rng(1),
                             start_stationary=False)
        assert dyn.effective_prr(0, 1) == pytest.approx(line5.link_prr(0, 1))

    def test_empirical_bad_fraction_converges(self, line5):
        dyn = GilbertElliott(
            line5, p_good_to_bad=0.05, p_bad_to_good=0.15,
            rng=np.random.default_rng(2), start_stationary=True,
        )
        fractions = []
        for _ in range(4000):
            dyn.step()
            fractions.append(dyn.bad_fraction())
        assert np.mean(fractions) == pytest.approx(
            dyn.stationary_bad_fraction, abs=0.08
        )

    def test_bursts_are_correlated(self, line5):
        # Consecutive-slot states of one link are positively correlated.
        dyn = GilbertElliott(
            line5, p_good_to_bad=0.05, p_bad_to_good=0.1,
            rng=np.random.default_rng(3), start_stationary=True,
        )
        states = []
        for _ in range(5000):
            dyn.step()
            states.append(dyn.gain(0, 1) < 1.0)
        states = np.asarray(states, dtype=float)
        a, b = states[:-1], states[1:]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.3


class TestEngineIntegration:
    def test_flood_completes_under_bursts(self, line5):
        from repro.net.packet import FloodWorkload
        from repro.net.schedule import ScheduleTable
        from repro.protocols import make_protocol
        from repro.sim.engine import SimConfig, run_flood

        rng = np.random.default_rng(4)
        schedules = ScheduleTable.random(line5.n_nodes, 5, rng)
        dyn = GilbertElliott(line5, rng=np.random.default_rng(5))
        result = run_flood(
            line5, schedules, FloodWorkload(2), make_protocol("dbao"),
            np.random.default_rng(6),
            SimConfig(coverage_target=1.0, max_slots=100_000),
            dynamics=dyn,
        )
        assert result.completed

    def test_outage_blocks_link(self, line5):
        # bad_factor=0 and a permanently-bad link: nothing gets through.
        from repro.net.radio import RadioModel, Transmission, resolve_slot

        dyn = GilbertElliott(
            line5, p_good_to_bad=1.0, p_bad_to_good=1e-9, bad_factor=0.0,
            rng=np.random.default_rng(7), start_stationary=False,
        )
        dyn.step()  # everyone transitions to BAD
        rng = np.random.default_rng(8)
        out = resolve_slot(
            [Transmission(0, 1, 0)], line5, awake=[1], rng=rng,
            model=RadioModel(), dynamics=dyn,
        )
        assert out.receptions == []
        assert out.n_failures == 1
