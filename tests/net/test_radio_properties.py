"""Property-based tests of the radio resolver's conservation laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.generators import random_geometric_topology
from repro.net.radio import RadioModel, Transmission, resolve_slot


def build_topo(seed: int):
    rng = np.random.default_rng(seed)
    return random_geometric_topology(20, area_m=180.0, rng=rng,
                                     neighbor_threshold=0.2)


def random_transmissions(topo, rng, n_tx: int):
    senders = rng.permutation(topo.n_nodes)[:n_tx]
    txs = []
    for s in senders.tolist():
        out = topo.out_neighbors(s)
        if out.size == 0:
            continue
        r = int(out[rng.integers(out.size)])
        txs.append(Transmission(sender=s, receiver=r, packet=0))
    return txs


@given(st.integers(0, 200), st.integers(1, 10), st.booleans(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_resolver_conservation_laws(seed, n_tx, collisions, overhearing):
    """Invariants that must hold for every model configuration."""
    topo = build_topo(3)
    rng = np.random.default_rng(seed)
    txs = random_transmissions(topo, rng, n_tx)
    awake = rng.permutation(topo.n_nodes)[: rng.integers(1, topo.n_nodes)]
    model = RadioModel(collisions=collisions, overhearing=overhearing)
    out = resolve_slot(txs, topo, awake, rng, model)

    senders = {tx.sender for tx in txs}
    awake_set = set(awake.tolist())

    # 1. Every transmission is either delivered-to-intended or a failure.
    delivered_pairs = {
        (r.sender, r.receiver) for r in out.receptions if not r.overheard
    }
    for tx in txs:
        delivered = (tx.sender, tx.receiver) in delivered_pairs
        failed = tx in out.failures
        assert delivered != failed  # exactly one of the two

    # 2. Nobody receives while transmitting (semi-duplex).
    for rec in out.receptions:
        assert rec.receiver not in senders

    # 3. Receptions only at awake nodes.
    for rec in out.receptions:
        assert rec.receiver in awake_set

    # 4. At most one reception per receiver per slot.
    receivers = [r.receiver for r in out.receptions]
    assert len(receivers) == len(set(receivers))

    # 5. Collisions are a subset of failures.
    assert len(out.collisions) <= len(out.failures)

    # 6. Without overhearing, every reception was addressed.
    if not overhearing:
        assert all(not r.overheard for r in out.receptions)

    # 7. Receptions travel only over existing links.
    for rec in out.receptions:
        assert topo.has_link(rec.sender, rec.receiver)


@given(st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_lossless_single_tx_always_delivers(seed):
    topo = build_topo(3)
    rng = np.random.default_rng(seed)
    txs = random_transmissions(topo, rng, 1)
    if not txs:
        return
    tx = txs[0]
    out = resolve_slot(
        [tx], topo, [tx.receiver], rng, RadioModel(lossless=True)
    )
    assert len(out.receptions) == 1
    assert out.n_failures == 0
