"""Tests for topology generators."""

import numpy as np
import pytest

from repro.net.generators import (
    binary_tree_topology,
    clustered_positions,
    geometric_topology,
    grid_topology,
    line_topology,
    positions_to_topology,
    random_geometric_topology,
    star_topology,
)
from repro.net.links import RadioParameters


class TestSimpleShapes:
    def test_line(self):
        topo = line_topology(4)
        assert topo.n_sensors == 4
        assert topo.has_link(0, 1) and topo.has_link(1, 0)
        assert not topo.has_link(0, 2)
        assert topo.hop_distances_from_source().tolist() == [0, 1, 2, 3, 4]

    def test_star(self):
        topo = star_topology(6)
        assert topo.out_neighbors(0).tolist() == [1, 2, 3, 4, 5, 6]
        assert topo.out_neighbors(3).tolist() == [0]

    def test_binary_tree(self):
        topo = binary_tree_topology(depth=3)
        assert topo.n_nodes == 15
        # Root links to 1 and 2.
        assert topo.out_neighbors(0).tolist() == [1, 2]
        assert topo.is_connected_from_source()

    def test_binary_tree_validation(self):
        with pytest.raises(ValueError):
            binary_tree_topology(depth=0)

    def test_lossy_variants(self):
        assert line_topology(3, prr=0.5).mean_prr() == pytest.approx(0.5)


class TestGrid:
    def test_perfect_grid_structure(self):
        topo = grid_topology(3, 4, perfect_links=True)
        assert topo.n_nodes == 12
        # Corner has 2 neighbors, center has 4.
        assert topo.out_neighbors(0).size == 2
        assert topo.out_neighbors(5).size == 4
        assert topo.is_connected_from_source()

    def test_physical_grid(self, rng):
        topo = grid_topology(4, 4, spacing_m=20.0, rng=rng)
        assert topo.n_nodes == 16
        assert topo.positions is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_topology(0, 4)


class TestRgg:
    def test_source_at_center(self, rng):
        topo = random_geometric_topology(40, 300.0, rng=rng)
        assert np.allclose(topo.positions[0], [150.0, 150.0])

    def test_deterministic_given_rng(self):
        a = random_geometric_topology(30, 200.0, rng=np.random.default_rng(5))
        b = random_geometric_topology(30, 200.0, rng=np.random.default_rng(5))
        assert np.array_equal(a.prr, b.prr)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_geometric_topology(1, 100.0, rng=rng)
        with pytest.raises(ValueError):
            random_geometric_topology(10, 0.0, rng=rng)


class TestPositionsToTopology:
    def test_close_nodes_linked(self, rng):
        pos = np.asarray([[0.0, 0.0], [5.0, 0.0], [1000.0, 1000.0]])
        topo = positions_to_topology(pos, RadioParameters(), rng)
        assert topo.has_link(0, 1)
        assert not topo.has_link(0, 2)

    def test_rssi_populated(self, rng):
        pos = np.asarray([[0.0, 0.0], [10.0, 0.0]])
        topo = positions_to_topology(pos, RadioParameters(), rng)
        assert topo.rssi is not None
        assert np.isfinite(topo.link_rssi(0, 1))

    def test_no_shadowing_is_deterministic(self):
        pos = np.asarray([[0.0, 0.0], [30.0, 0.0], [0.0, 30.0]])
        radio = RadioParameters(shadowing_sigma_db=0.0)
        a = positions_to_topology(pos, radio)
        b = positions_to_topology(pos, radio)
        assert np.array_equal(a.prr, b.prr)

    def test_symmetric_shadowing(self, rng):
        pos = np.asarray([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]])
        topo = positions_to_topology(
            pos, RadioParameters(), rng, symmetric_shadowing=True
        )
        # With symmetric shadowing, PRR is symmetric too.
        assert np.allclose(topo.prr, topo.prr.T)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            positions_to_topology(np.zeros((3, 3)), RadioParameters(), rng)


class TestClusteredPositions:
    def test_within_bounds(self, rng):
        pos = clustered_positions(200, 500.0, 8, 40.0, rng)
        assert pos.shape == (200, 2)
        assert np.all(pos >= 0.0) and np.all(pos <= 500.0)

    def test_clustering_is_tighter_than_uniform(self, rng):
        clustered = clustered_positions(300, 500.0, 4, 20.0, rng,
                                        background_fraction=0.0)
        uniform = rng.uniform(0, 500.0, size=(300, 2))
        # Mean nearest-neighbor distance is smaller under clustering.
        def mean_nn(pos):
            d = np.sqrt(((pos[:, None] - pos[None]) ** 2).sum(-1))
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()
        assert mean_nn(clustered) < mean_nn(uniform)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            clustered_positions(10, 100.0, 0, 10.0, rng)
        with pytest.raises(ValueError):
            clustered_positions(10, 100.0, 2, 10.0, rng, background_fraction=1.5)


class TestGeometricTopology:
    """The PHY-layer topology source: placement + log-distance path loss."""

    def test_uniform_is_deterministic_given_rng(self):
        a = geometric_topology(30, 180.0, rng=np.random.default_rng(3))
        b = geometric_topology(30, 180.0, rng=np.random.default_rng(3))
        assert np.array_equal(a.prr, b.prr)
        assert np.array_equal(a.rssi, b.rssi)

    def test_rssi_and_prr_populated(self, rng):
        topo = geometric_topology(20, 120.0, rng=rng)
        assert topo.rssi is not None
        assert topo.prr.shape == (20, 20)
        assert (topo.prr >= 0).all() and (topo.prr <= 1).all()
        assert np.diagonal(topo.prr).sum() == 0

    def test_grid_placement_known_connected(self):
        # A 4x4 lattice at 30 m pitch under the default CC2420-class
        # radio: every sensor reaches the flood source.
        topo = geometric_topology(16, 90.0, placement="grid",
                                  rng=np.random.default_rng(0))
        assert topo.reachable_from_source().all()

    def test_grid_source_is_center_nearest(self):
        topo = geometric_topology(9, 90.0, placement="grid",
                                  rng=np.random.default_rng(0))
        pos = topo.positions
        center = np.array([45.0, 45.0])
        d = np.linalg.norm(pos - center, axis=1)
        assert d[0] == d.min()

    def test_radio_parameters_shape_the_links(self):
        # A hotter transmitter closes more links at the same geometry.
        weak = geometric_topology(
            25, 200.0, rng=np.random.default_rng(5),
            radio=RadioParameters(tx_power_dbm=-10.0, shadowing_sigma_db=0.0))
        hot = geometric_topology(
            25, 200.0, rng=np.random.default_rng(5),
            radio=RadioParameters(tx_power_dbm=5.0, shadowing_sigma_db=0.0))
        assert (hot.prr > 0).sum() > (weak.prr > 0).sum()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            geometric_topology(1, 100.0, rng=rng)
        with pytest.raises(ValueError):
            geometric_topology(10, 0.0, rng=rng)
        with pytest.raises(ValueError, match="uniform"):
            geometric_topology(10, 100.0, placement="hex", rng=rng)
