"""Tests for the Topology substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.net.topology import SOURCE, Topology


def make_prr(n, links):
    mat = np.zeros((n, n))
    for (i, j, q) in links:
        mat[i, j] = q
    return mat


class TestConstruction:
    def test_basic(self):
        topo = Topology(make_prr(3, [(0, 1, 1.0), (1, 2, 0.5), (2, 1, 0.5)]))
        assert topo.n_nodes == 3
        assert topo.n_sensors == 2
        assert topo.has_link(0, 1)
        assert not topo.has_link(1, 0)

    def test_threshold_prunes_weak_links(self):
        topo = Topology(
            make_prr(3, [(0, 1, 0.05), (0, 2, 0.5)]), neighbor_threshold=0.1
        )
        assert not topo.has_link(0, 1)
        assert topo.link_prr(0, 1) == 0.0
        assert topo.has_link(0, 2)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 3)))

    def test_rejects_self_links(self):
        mat = make_prr(2, [(0, 1, 1.0)])
        mat[0, 0] = 0.5
        with pytest.raises(ValueError):
            Topology(mat)

    def test_rejects_out_of_range_prr(self):
        with pytest.raises(ValueError):
            Topology(make_prr(2, [(0, 1, 1.5)]))

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            Topology(np.zeros((1, 1)))

    def test_positions_shape_checked(self):
        with pytest.raises(ValueError):
            Topology(make_prr(2, [(0, 1, 1.0)]), positions=np.zeros((3, 2)))

    def test_rssi_shape_checked(self):
        with pytest.raises(ValueError):
            Topology(make_prr(2, [(0, 1, 1.0)]), rssi=np.zeros((3, 3)))

    def test_complete_constructor(self):
        topo = Topology.complete(5, prr=0.8)
        assert topo.n_sensors == 5
        assert np.all(topo.adjacency[~np.eye(6, dtype=bool)])

    def test_homogeneous_from_graph(self):
        g = nx.path_graph(4)
        topo = Topology.homogeneous(g, prr=0.7)
        assert topo.has_link(0, 1) and topo.has_link(1, 0)
        assert not topo.has_link(0, 3)
        assert topo.link_prr(2, 3) == pytest.approx(0.7)

    def test_homogeneous_rejects_bad_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            Topology.homogeneous(g)


class TestQueries:
    def test_neighbor_lists(self, line5):
        assert line5.out_neighbors(0).tolist() == [1]
        assert line5.out_neighbors(2).tolist() == [1, 3]
        assert line5.in_neighbors(4).tolist() == [3]

    def test_degree_stats(self, star8):
        mean, lo, hi = star8.degree_stats()
        assert hi == 8  # the hub
        assert lo == 1

    def test_mean_prr(self, lossy_line5):
        assert lossy_line5.mean_prr() == pytest.approx(0.6)

    def test_mean_k_class(self, lossy_line5):
        assert lossy_line5.mean_k_class() == pytest.approx(1.0 / 0.6)

    def test_distance_requires_positions(self, line5, star8):
        assert line5.distance(0, 2) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            star8.distance(0, 1)

    def test_link_rssi_nan_without_data(self, line5):
        assert np.isnan(line5.link_rssi(0, 1))


class TestGraphViews:
    def test_to_networkx_attributes(self, lossy_line5):
        g = lossy_line5.to_networkx()
        assert g.number_of_nodes() == 5
        assert g[0][1]["prr"] == pytest.approx(0.6)
        assert g[0][1]["etx"] == pytest.approx(1.0 / 0.6)

    def test_undirected_view(self, line5):
        g = line5.undirected_view()
        assert g.number_of_edges() == 4

    def test_connectivity(self, line5):
        assert line5.is_connected_from_source()
        # Cut the chain: node 3 and 4 unreachable.
        mat = line5.prr.copy()
        mat[2, 3] = mat[3, 2] = 0.0
        cut = Topology(mat)
        assert not cut.is_connected_from_source()
        reach = cut.reachable_from_source()
        assert reach.tolist() == [True, True, True, False, False]

    def test_hop_distances(self, line5):
        hops = line5.hop_distances_from_source()
        assert hops.tolist() == [0, 1, 2, 3, 4]

    def test_hop_distance_unreachable_is_minus_one(self):
        mat = make_prr(3, [(0, 1, 1.0), (1, 0, 1.0)])
        topo = Topology(mat)
        assert topo.hop_distances_from_source()[2] == -1
