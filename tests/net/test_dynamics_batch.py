"""Tests for the replication-batched Gilbert-Elliott layer.

The batched engine stacks R per-replication :class:`GilbertElliott`
instances into one :class:`BatchGilbertElliott` whose rows must evolve
**bit-identically** to the standalone instances — same BAD flags, same
generator positions — under any interleaving of per-replication steps
and block advances, including the chunked closed-form advance path.
"""

import numpy as np
import pytest

from repro.net.dynamics import BatchGilbertElliott, GilbertElliott


def _make(topo, seed, p_gb=0.05, p_bg=0.2):
    return GilbertElliott(
        topo, p_good_to_bad=p_gb, p_bad_to_good=p_bg, bad_factor=0.2,
        rng=np.random.default_rng(seed), start_stationary=True,
    )


def _twin_sets(topo, n_reps, **kw):
    """(batched, serial) instance sets built from identical streams."""
    batched_src = [_make(topo, 100 + rep, **kw) for rep in range(n_reps)]
    serial = [_make(topo, 100 + rep, **kw) for rep in range(n_reps)]
    return BatchGilbertElliott.from_instances(batched_src), serial


class TestConstruction:
    def test_from_instances_shape(self, small_rgg):
        batch, serial = _twin_sets(small_rgg, 3)
        assert batch.n_reps == 3
        assert batch.n_links == serial[0].n_links
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(batch.rep_state(rep), inst._bad)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BatchGilbertElliott.from_instances([])

    def test_mismatched_params_rejected(self, small_rgg):
        a = _make(small_rgg, 1, p_gb=0.05)
        b = _make(small_rgg, 2, p_gb=0.07)
        with pytest.raises(ValueError):
            BatchGilbertElliott.from_instances([a, b])

    def test_mismatched_topology_rejected(self, small_rgg, line5):
        a = _make(small_rgg, 1)
        b = _make(line5, 2)
        with pytest.raises(ValueError):
            BatchGilbertElliott.from_instances([a, b])


class TestStepReps:
    """step_reps(rep_ids) == each listed serial instance stepping once."""

    def test_all_reps_step(self, small_rgg):
        batch, serial = _twin_sets(small_rgg, 4)
        for _ in range(50):
            batch.step_reps(np.arange(4))
            for inst in serial:
                inst.step()
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(batch.rep_state(rep), inst._bad)

    def test_subset_steps_leave_others_untouched(self, small_rgg):
        batch, serial = _twin_sets(small_rgg, 4)
        # Reps advance on their own clocks: 0 and 2 run, 1 and 3 idle.
        for _ in range(20):
            batch.step_reps(np.array([0, 2]))
            serial[0].step()
            serial[2].step()
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(batch.rep_state(rep), inst._bad)
        # Stream positions stayed per-replication too.
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(
                batch._rngs[rep].random(8), inst._rng.random(8)
            )


class TestAdvanceRep:
    """advance_rep(k, n) == the serial instance's advance(n) == n steps."""

    @pytest.mark.parametrize("k", [1, 3, 7, 64, 1001])
    def test_matches_serial_advance(self, small_rgg, k):
        batch, serial = _twin_sets(small_rgg, 3)
        batch.advance_rep(1, k)
        serial[1].advance(k)
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(batch.rep_state(rep), inst._bad)
            np.testing.assert_array_equal(
                batch._rngs[rep].random(8), inst._rng.random(8)
            )

    @pytest.mark.parametrize("k", [2, 13, 200])
    def test_matches_sequential_steps(self, small_rgg, k):
        batch, serial = _twin_sets(small_rgg, 2)
        batch.advance_rep(0, k)
        for _ in range(k):
            serial[0].step()
        np.testing.assert_array_equal(batch.rep_state(0), serial[0]._bad)
        np.testing.assert_array_equal(
            batch._rngs[0].random(8), serial[0]._rng.random(8)
        )

    def test_interleaved_step_advance_lazy_catchup(self, small_rgg):
        # The batched engine's actual pattern: reps at different clocks,
        # each catching up with advance_rep then stepping.
        batch, serial = _twin_sets(small_rgg, 3)
        script = [(0, 4), (1, 0), (2, 17), (0, 1), (2, 2), (1, 30)]
        for rep, gap in script:
            if gap:
                batch.advance_rep(rep, gap)
                serial[rep].advance(gap)
            batch.step_reps(np.array([rep]))
            serial[rep].step()
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(batch.rep_state(rep), inst._bad)
            np.testing.assert_array_equal(
                batch._rngs[rep].random(8), inst._rng.random(8)
            )

    def test_chunk_boundary(self, small_rgg, monkeypatch):
        # Force the closed-form advance to split into multiple chunks
        # (normally only hit on very long gaps): per-chunk block draws
        # must consume each replication's stream identically to the
        # step-by-step evolution.
        from repro.net import dynamics as dyn_mod

        batch, serial = _twin_sets(small_rgg, 2, p_gb=0.04, p_bg=0.12)
        n_links = batch.n_links
        monkeypatch.setattr(dyn_mod, "_ADVANCE_BLOCK_DRAWS", 7 * n_links)
        k = 5000
        batch.advance_rep(0, k)
        batch.advance_rep(1, k)
        for inst in serial:
            for _ in range(k):
                inst.step()
        for rep, inst in enumerate(serial):
            np.testing.assert_array_equal(batch.rep_state(rep), inst._bad)
            np.testing.assert_array_equal(
                batch._rngs[rep].random(8), inst._rng.random(8)
            )

    def test_negative_rejected(self, small_rgg):
        batch, _ = _twin_sets(small_rgg, 2)
        with pytest.raises(ValueError):
            batch.advance_rep(0, -1)

    def test_zero_is_noop(self, small_rgg):
        batch, serial = _twin_sets(small_rgg, 2)
        before = batch.rep_state(1)
        batch.advance_rep(1, 0)
        np.testing.assert_array_equal(batch.rep_state(1), before)
        np.testing.assert_array_equal(
            batch._rngs[1].random(4), serial[1]._rng.random(4)
        )


class TestGains:
    def test_scalar_gain_matches_serial(self, small_rgg):
        batch, serial = _twin_sets(small_rgg, 3)
        batch.step_reps(np.arange(3))
        for inst in serial:
            inst.step()
        n = small_rgg.n_nodes
        for rep, inst in enumerate(serial):
            for s in range(n):
                for r in range(n):
                    assert batch.gain(rep, s, r) == inst.gain(s, r)

    def test_vectorized_gains_match_scalar(self, small_rgg):
        batch, _ = _twin_sets(small_rgg, 3)
        batch.step_reps(np.arange(3))
        rng = np.random.default_rng(0)
        n = small_rgg.n_nodes
        kk = rng.integers(0, 3, size=64)
        ss = rng.integers(0, n, size=64)
        rr = rng.integers(0, n, size=64)
        out = batch.gains(kk, ss, rr)
        expect = [batch.gain(int(k), int(s), int(r))
                  for k, s, r in zip(kk, ss, rr)]
        np.testing.assert_array_equal(out, np.asarray(expect))

    def test_view_is_serial_shaped(self, small_rgg):
        batch, serial = _twin_sets(small_rgg, 2)
        batch.step_reps(np.arange(2))
        for inst in serial:
            inst.step()
        view = batch.view(1)
        for s, r in zip(*np.nonzero(small_rgg.adjacency)):
            assert view.gain(int(s), int(r)) == serial[1].gain(int(s), int(r))
