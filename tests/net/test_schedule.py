"""Tests for working schedules and the vectorized schedule table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.schedule import (
    ScheduleTable,
    WorkingSchedule,
    duty_ratio_to_period,
    period_to_duty_ratio,
    random_schedules,
    slots_until_phase,
)


class TestSlotsUntilPhase:
    """Boundary cases of the phase-arithmetic helper.

    ``slots_until_phase(offsets, t, period)`` is the *inclusive* wait —
    0 when ``t`` already sits on the phase — which is why the strict
    ``next_wake_after`` queries it at ``t + 1``.
    """

    def test_zero_wait_on_own_phase(self):
        assert slots_until_phase(3, 3, 10) == 0
        assert slots_until_phase(0, 0, 10) == 0
        assert slots_until_phase(0, 20, 10) == 0  # t % period == 0

    def test_wraps_past_period_boundary(self):
        assert slots_until_phase(1, 9, 10) == 2
        assert slots_until_phase(0, 1, 10) == 9

    def test_period_one_is_always_zero(self):
        offsets = np.zeros(4, dtype=np.int64)
        for t in (0, 1, 99):
            assert np.all(slots_until_phase(offsets, t, 1) == 0)

    def test_vectorized_matches_scalar(self):
        offsets = np.array([0, 1, 5, 9])
        for t in (0, 9, 10, 37):
            vec = slots_until_phase(offsets, t, 10)
            for o, w in zip(offsets.tolist(), vec.tolist()):
                assert w == slots_until_phase(o, t, 10)


class TestDutyConversions:
    @pytest.mark.parametrize("ratio,period", [(0.05, 20), (0.02, 50), (0.1, 10), (1.0, 1)])
    def test_ratio_to_period(self, ratio, period):
        assert duty_ratio_to_period(ratio) == period

    def test_period_to_ratio(self):
        assert period_to_duty_ratio(20) == pytest.approx(0.05)
        assert period_to_duty_ratio(10, active_slots=2) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            duty_ratio_to_period(0.0)
        with pytest.raises(ValueError):
            duty_ratio_to_period(1.5)
        with pytest.raises(ValueError):
            period_to_duty_ratio(0)
        with pytest.raises(ValueError):
            period_to_duty_ratio(5, active_slots=6)


class TestWorkingSchedule:
    def test_single_slot_schedule(self):
        ws = WorkingSchedule.single(period=20, offset=7)
        assert ws.duty_ratio == pytest.approx(0.05)
        assert ws.is_active(7) and ws.is_active(27)
        assert not ws.is_active(8)

    def test_next_active_same_period(self):
        ws = WorkingSchedule.single(10, 4)
        assert ws.next_active(0) == 4
        assert ws.next_active(4) == 4  # active now
        assert ws.next_active(5) == 14  # wrapped

    def test_next_active_after_forces_progress(self):
        ws = WorkingSchedule.single(10, 4)
        assert ws.next_active_after(4) == 14

    def test_sleep_latency(self):
        # Fig. 1: sensor 1 receives at slot 0, must wait for sensor 2's
        # wake at slot 3 -> sleep latency 3.
        ws2 = WorkingSchedule.single(5, 3)
        assert ws2.sleep_latency_from(0) == 3

    def test_multi_slot_schedule(self):
        ws = WorkingSchedule(period=10, active_slots=frozenset({2, 7}))
        assert ws.duty_ratio == pytest.approx(0.2)
        assert ws.next_active(3) == 7
        assert ws.next_active(8) == 12

    def test_active_slots_in_window(self):
        ws = WorkingSchedule.single(5, 1)
        assert ws.active_slots_in(0, 16) == [1, 6, 11]

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSchedule(period=0, active_slots=frozenset({0}))
        with pytest.raises(ValueError):
            WorkingSchedule(period=5, active_slots=frozenset())
        with pytest.raises(ValueError):
            WorkingSchedule(period=5, active_slots=frozenset({5}))
        with pytest.raises(ValueError):
            WorkingSchedule.single(5, 2).next_active(-1)

    @given(st.integers(1, 60), st.data())
    @settings(max_examples=80)
    def test_next_active_is_active_and_minimal(self, period, data):
        offset = data.draw(st.integers(0, period - 1))
        t = data.draw(st.integers(0, 500))
        ws = WorkingSchedule.single(period, offset)
        nxt = ws.next_active(t)
        assert nxt >= t
        assert ws.is_active(nxt)
        # Minimality: no active slot in [t, nxt).
        for u in range(t, nxt):
            assert not ws.is_active(u)

    @given(st.integers(1, 40), st.data())
    @settings(max_examples=50)
    def test_periodicity(self, period, data):
        offset = data.draw(st.integers(0, period - 1))
        t = data.draw(st.integers(0, 200))
        ws = WorkingSchedule.single(period, offset)
        assert ws.is_active(t) == ws.is_active(t + period)


class TestScheduleTable:
    def test_awake_lists_partition_nodes(self, rng):
        table = ScheduleTable.random(50, 10, rng)
        all_nodes = np.concatenate([table.awake_at(t) for t in range(10)])
        assert sorted(all_nodes.tolist()) == list(range(50))

    def test_awake_matches_offsets(self, rng):
        table = ScheduleTable.random(30, 7, rng)
        for t in range(14):
            awake = set(table.awake_at(t).tolist())
            expected = {v for v in range(30) if table.offsets[v] == t % 7}
            assert awake == expected

    def test_next_active_agrees_with_object_model(self, rng):
        table = ScheduleTable.random(20, 12, rng)
        for v in range(20):
            ws = table.schedule_of(v)
            for t in (0, 5, 30, 100):
                assert table.next_active(v, t) == ws.next_active(t)

    def test_next_active_array_vectorizes(self, rng):
        table = ScheduleTable.random(25, 9, rng)
        for t in (0, 4, 77):
            arr = table.next_active_array(t)
            for v in range(25):
                assert arr[v] == table.next_active(v, t)

    def test_next_active_array_boundaries(self):
        # Inclusive semantics at the period boundary: a node whose
        # offset matches t % period is active *now* (wait 0), unlike
        # the strict next_wake_after.
        table = ScheduleTable(period=4, offsets=[0, 2])
        assert table.next_active_array(0).tolist() == [0, 2]
        assert table.next_active_array(4).tolist() == [4, 6]
        assert table.next_active_array(3).tolist() == [4, 6]
        one = ScheduleTable(period=1, offsets=[0])
        for t in (0, 5):
            assert one.next_active_array(t)[0] == t

    def test_is_active(self, rng):
        table = ScheduleTable(period=4, offsets=[0, 1, 2, 3])
        assert table.is_active(0, 0) and table.is_active(0, 4)
        assert not table.is_active(0, 1)

    def test_from_duty_ratio(self, rng):
        table = ScheduleTable.from_duty_ratio(10, 0.05, rng)
        assert table.period == 20
        assert table.duty_ratio == pytest.approx(0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ScheduleTable(period=0, offsets=[0])
        with pytest.raises(ValueError):
            ScheduleTable(period=5, offsets=[5])
        with pytest.raises(ValueError):
            ScheduleTable(period=5, offsets=[])
        with pytest.raises(ValueError):
            ScheduleTable.random(0, 5, rng)
        table = ScheduleTable(period=5, offsets=[0, 1])
        with pytest.raises(ValueError):
            table.awake_at(-1)

    @given(st.integers(1, 50), st.integers(1, 40), st.integers(0, 300))
    @settings(max_examples=60)
    def test_next_active_property(self, n_nodes, period, t):
        rng = np.random.default_rng(4)
        table = ScheduleTable.random(n_nodes, period, rng)
        arr = table.next_active_array(t)
        assert np.all(arr >= t)
        assert np.all(arr < t + period)
        for v in range(min(n_nodes, 8)):
            assert table.is_active(v, int(arr[v]))


class TestNextWakeAfter:
    """Boundary behaviour of the quiescence-frontier primitive.

    ``next_wake_after(t)`` is strictly-after: a node whose active phase
    is exactly ``t``'s phase maps to ``t + period``, never ``t``.
    """

    def test_strictly_after_at_own_phase(self):
        # t % period == offset: the node is active *now*, so the next
        # wake is one full period away.
        table = ScheduleTable(period=5, offsets=[0, 2, 4])
        assert table.next_wake_after(0).tolist() == [5, 2, 4]
        assert table.next_wake_after(2).tolist() == [5, 7, 4]
        assert table.next_wake_after(4).tolist() == [5, 7, 9]

    def test_period_boundary(self):
        # t on a period boundary (t % period == 0) with offset 0 —
        # the off-by-one trap: must return t + period, not t.
        table = ScheduleTable(period=4, offsets=[0])
        for t in (0, 4, 8, 400):
            assert table.next_wake_after(t)[0] == t + 4

    def test_period_one_always_next_slot(self):
        # Always-on nodes: strictly-after collapses to t + 1.
        table = ScheduleTable(period=1, offsets=[0, 0, 0])
        for t in (0, 1, 17):
            assert table.next_wake_after(t).tolist() == [t + 1] * 3

    def test_node_subset_with_duplicates(self):
        table = ScheduleTable(period=6, offsets=[0, 1, 2, 3])
        out = table.next_wake_after(2, nodes=np.array([3, 1, 1]))
        assert out.tolist() == [3, 7, 7]

    def test_agrees_with_object_model(self, rng):
        table = ScheduleTable.random(15, 7, rng)
        for t in (0, 6, 7, 13, 50):
            arr = table.next_wake_after(t)
            for v in range(15):
                assert arr[v] == table.schedule_of(v).next_active_after(t)

    @given(st.integers(1, 40), st.integers(0, 200))
    @settings(max_examples=60)
    def test_property_minimal_strict_wake(self, period, t):
        table = ScheduleTable.random(12, period, np.random.default_rng(8))
        arr = table.next_wake_after(t)
        assert np.all(arr > t)
        assert np.all(arr <= t + period)
        for v in range(12):
            nxt = int(arr[v])
            assert table.is_active(v, nxt)
            # minimality: no active slot strictly between t and nxt
            assert table.next_active(v, t + 1) == nxt


class TestRandomSchedules:
    def test_respects_duty_ratio(self, rng):
        scheds = random_schedules(20, 0.1, rng, active_slots=2)
        for ws in scheds:
            assert ws.duty_ratio == pytest.approx(0.1, rel=0.05)
            assert len(ws.active_slots) == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_schedules(5, 0.1, rng, active_slots=0)
