"""Tests for working schedules and the vectorized schedule table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.schedule import (
    ScheduleTable,
    WorkingSchedule,
    duty_ratio_to_period,
    period_to_duty_ratio,
    random_schedules,
)


class TestDutyConversions:
    @pytest.mark.parametrize("ratio,period", [(0.05, 20), (0.02, 50), (0.1, 10), (1.0, 1)])
    def test_ratio_to_period(self, ratio, period):
        assert duty_ratio_to_period(ratio) == period

    def test_period_to_ratio(self):
        assert period_to_duty_ratio(20) == pytest.approx(0.05)
        assert period_to_duty_ratio(10, active_slots=2) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            duty_ratio_to_period(0.0)
        with pytest.raises(ValueError):
            duty_ratio_to_period(1.5)
        with pytest.raises(ValueError):
            period_to_duty_ratio(0)
        with pytest.raises(ValueError):
            period_to_duty_ratio(5, active_slots=6)


class TestWorkingSchedule:
    def test_single_slot_schedule(self):
        ws = WorkingSchedule.single(period=20, offset=7)
        assert ws.duty_ratio == pytest.approx(0.05)
        assert ws.is_active(7) and ws.is_active(27)
        assert not ws.is_active(8)

    def test_next_active_same_period(self):
        ws = WorkingSchedule.single(10, 4)
        assert ws.next_active(0) == 4
        assert ws.next_active(4) == 4  # active now
        assert ws.next_active(5) == 14  # wrapped

    def test_next_active_after_forces_progress(self):
        ws = WorkingSchedule.single(10, 4)
        assert ws.next_active_after(4) == 14

    def test_sleep_latency(self):
        # Fig. 1: sensor 1 receives at slot 0, must wait for sensor 2's
        # wake at slot 3 -> sleep latency 3.
        ws2 = WorkingSchedule.single(5, 3)
        assert ws2.sleep_latency_from(0) == 3

    def test_multi_slot_schedule(self):
        ws = WorkingSchedule(period=10, active_slots=frozenset({2, 7}))
        assert ws.duty_ratio == pytest.approx(0.2)
        assert ws.next_active(3) == 7
        assert ws.next_active(8) == 12

    def test_active_slots_in_window(self):
        ws = WorkingSchedule.single(5, 1)
        assert ws.active_slots_in(0, 16) == [1, 6, 11]

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSchedule(period=0, active_slots=frozenset({0}))
        with pytest.raises(ValueError):
            WorkingSchedule(period=5, active_slots=frozenset())
        with pytest.raises(ValueError):
            WorkingSchedule(period=5, active_slots=frozenset({5}))
        with pytest.raises(ValueError):
            WorkingSchedule.single(5, 2).next_active(-1)

    @given(st.integers(1, 60), st.data())
    @settings(max_examples=80)
    def test_next_active_is_active_and_minimal(self, period, data):
        offset = data.draw(st.integers(0, period - 1))
        t = data.draw(st.integers(0, 500))
        ws = WorkingSchedule.single(period, offset)
        nxt = ws.next_active(t)
        assert nxt >= t
        assert ws.is_active(nxt)
        # Minimality: no active slot in [t, nxt).
        for u in range(t, nxt):
            assert not ws.is_active(u)

    @given(st.integers(1, 40), st.data())
    @settings(max_examples=50)
    def test_periodicity(self, period, data):
        offset = data.draw(st.integers(0, period - 1))
        t = data.draw(st.integers(0, 200))
        ws = WorkingSchedule.single(period, offset)
        assert ws.is_active(t) == ws.is_active(t + period)


class TestScheduleTable:
    def test_awake_lists_partition_nodes(self, rng):
        table = ScheduleTable.random(50, 10, rng)
        all_nodes = np.concatenate([table.awake_at(t) for t in range(10)])
        assert sorted(all_nodes.tolist()) == list(range(50))

    def test_awake_matches_offsets(self, rng):
        table = ScheduleTable.random(30, 7, rng)
        for t in range(14):
            awake = set(table.awake_at(t).tolist())
            expected = {v for v in range(30) if table.offsets[v] == t % 7}
            assert awake == expected

    def test_next_active_agrees_with_object_model(self, rng):
        table = ScheduleTable.random(20, 12, rng)
        for v in range(20):
            ws = table.schedule_of(v)
            for t in (0, 5, 30, 100):
                assert table.next_active(v, t) == ws.next_active(t)

    def test_next_active_array_vectorizes(self, rng):
        table = ScheduleTable.random(25, 9, rng)
        for t in (0, 4, 77):
            arr = table.next_active_array(t)
            for v in range(25):
                assert arr[v] == table.next_active(v, t)

    def test_is_active(self, rng):
        table = ScheduleTable(period=4, offsets=[0, 1, 2, 3])
        assert table.is_active(0, 0) and table.is_active(0, 4)
        assert not table.is_active(0, 1)

    def test_from_duty_ratio(self, rng):
        table = ScheduleTable.from_duty_ratio(10, 0.05, rng)
        assert table.period == 20
        assert table.duty_ratio == pytest.approx(0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ScheduleTable(period=0, offsets=[0])
        with pytest.raises(ValueError):
            ScheduleTable(period=5, offsets=[5])
        with pytest.raises(ValueError):
            ScheduleTable(period=5, offsets=[])
        with pytest.raises(ValueError):
            ScheduleTable.random(0, 5, rng)
        table = ScheduleTable(period=5, offsets=[0, 1])
        with pytest.raises(ValueError):
            table.awake_at(-1)

    @given(st.integers(1, 50), st.integers(1, 40), st.integers(0, 300))
    @settings(max_examples=60)
    def test_next_active_property(self, n_nodes, period, t):
        rng = np.random.default_rng(4)
        table = ScheduleTable.random(n_nodes, period, rng)
        arr = table.next_active_array(t)
        assert np.all(arr >= t)
        assert np.all(arr < t + period)
        for v in range(min(n_nodes, 8)):
            assert table.is_active(v, int(arr[v]))


class TestRandomSchedules:
    def test_respects_duty_ratio(self, rng):
        scheds = random_schedules(20, 0.1, rng, active_slots=2)
        for ws in scheds:
            assert ws.duty_ratio == pytest.approx(0.1, rel=0.05)
            assert len(ws.active_slots) == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_schedules(5, 0.1, rng, active_slots=0)
