"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.net.generators import (
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
)
from repro.net.schedule import ScheduleTable
from repro.net.topology import Topology


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def line5():
    """Chain: source -> 1 -> 2 -> 3 -> 4, perfect links."""
    return line_topology(4, prr=1.0)


@pytest.fixture
def star8():
    """Star: source hub with 8 sensors, perfect links."""
    return star_topology(8, prr=1.0)


@pytest.fixture
def lossy_line5():
    """Chain with PRR 0.6 links."""
    return line_topology(4, prr=0.6)


@pytest.fixture
def small_rgg(rng):
    """A ~60-sensor connected random deployment with lossy links."""
    for attempt in range(10):
        sub = np.random.default_rng(1000 + attempt)
        topo = random_geometric_topology(61, area_m=300.0, rng=sub)
        if topo.reachable_from_source().sum() >= 55:
            return topo
    raise RuntimeError("could not build a connected test deployment")


@pytest.fixture
def schedules5(rng):
    """Schedules for a 5-node network at 20% duty (period 5)."""
    return ScheduleTable.random(5, 5, rng)
