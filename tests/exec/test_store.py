"""Tests for the content-addressed result store."""

import dataclasses

import numpy as np
import pytest

from repro.exec import ResultStore, result_key, spec_fingerprint
from repro.net.generators import line_topology
from repro.sim.runner import ExperimentSpec, run_experiment


@pytest.fixture
def topo():
    return line_topology(5, prr=0.9)


@pytest.fixture
def spec():
    return ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2,
                          seed=3, n_replications=2)


class TestFingerprints:
    def test_spec_fingerprint_stable(self, spec):
        assert spec_fingerprint(spec) == spec_fingerprint(
            ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2,
                           seed=3, n_replications=2)
        )

    def test_spec_fingerprint_sensitive_to_every_field(self, spec):
        base = spec_fingerprint(spec)
        for change in (
            {"protocol": "opt"},
            {"duty_ratio": 0.25},
            {"n_packets": 3},
            {"seed": 4},
            {"n_replications": 1},
            {"coverage_target": 0.5},
            {"protocol_kwargs": {"overhearing": False}},
            {"measure_transmission_delay": True},
        ):
            assert spec_fingerprint(dataclasses.replace(spec, **change)) != base

    def test_unfingerprintable_type_rejected(self):
        with pytest.raises(TypeError, match="fingerprint"):
            spec_fingerprint({"rng": np.random.default_rng(0)})

    def test_topology_fingerprint_content_addressed(self, topo):
        same = line_topology(5, prr=0.9)
        other = line_topology(5, prr=0.8)
        assert topo.fingerprint() == same.fingerprint()
        assert topo.fingerprint() != other.fingerprint()

    def test_key_includes_engine_version(self, topo, spec):
        assert result_key(topo, spec) != result_key(
            topo, spec, engine_version="an-older-engine"
        )


class TestMemoryStore:
    def test_miss_then_hit(self, topo, spec):
        store = ResultStore()
        first = run_experiment(topo, spec, store=store)
        assert (store.hits, store.misses) == (0, 1)
        second = run_experiment(topo, spec, store=store)
        assert (store.hits, store.misses) == (1, 1)
        assert second is first  # memory layer returns the memoized object

    def test_different_spec_not_conflated(self, topo, spec):
        store = ResultStore()
        run_experiment(topo, spec, store=store)
        other = dataclasses.replace(spec, seed=spec.seed + 1)
        run_experiment(topo, other, store=store)
        assert store.misses == 2 and len(store) == 2


class TestDiskStore:
    def test_cache_dir_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("in the way")
        with pytest.raises(NotADirectoryError, match="not a directory"):
            ResultStore(not_a_dir)

    def test_round_trip_across_stores(self, tmp_path, topo, spec):
        first = run_experiment(topo, spec, store=ResultStore(tmp_path))
        fresh = ResultStore(tmp_path)  # simulates a new process
        second = run_experiment(topo, spec, store=fresh)
        assert fresh.hits == 1 and fresh.misses == 0
        assert np.array_equal(first.per_replication_delays(),
                              second.per_replication_delays())
        assert second.spec == spec

    def test_corrupted_entry_recomputed_not_served(self, tmp_path, topo, spec):
        store = ResultStore(tmp_path)
        pristine = run_experiment(topo, spec, store=store)
        (entry,) = tmp_path.glob("*.rsum")
        raw = bytearray(entry.read_bytes())
        raw[-1] ^= 0xFF  # flip payload bits -> digest mismatch
        entry.write_bytes(bytes(raw))

        fresh = ResultStore(tmp_path)
        recomputed = run_experiment(topo, spec, store=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        assert fresh.stats.rejected == 1
        assert np.array_equal(pristine.per_replication_delays(),
                              recomputed.per_replication_delays())
        # The recomputation overwrote the bad entry; next reader hits.
        assert ResultStore(tmp_path).get(fresh.key_for(topo, spec)) is not None

    def test_entry_recorded_under_other_key_rejected(self, tmp_path, topo, spec):
        store = ResultStore(tmp_path)
        key = store.key_for(topo, spec)
        run_experiment(topo, spec, store=store)
        # A stale entry copied/renamed onto this key must not be served.
        bogus_key = "0" * 64
        (tmp_path / f"{key}.rsum").rename(tmp_path / f"{bogus_key}.rsum")
        fresh = ResultStore(tmp_path)
        assert fresh.get(bogus_key) is None
        assert fresh.stats.rejected == 1

    def test_truncated_entry_rejected(self, tmp_path, topo, spec):
        store = ResultStore(tmp_path)
        run_experiment(topo, spec, store=store)
        (entry,) = tmp_path.glob("*.rsum")
        entry.write_bytes(entry.read_bytes()[:10])
        fresh = ResultStore(tmp_path)
        assert fresh.get(store.key_for(topo, spec)) is None

    def test_clear_drops_memory_keeps_disk(self, tmp_path, topo, spec):
        store = ResultStore(tmp_path)
        run_experiment(topo, spec, store=store)
        store.clear()
        assert len(store) == 0
        assert store.get(store.key_for(topo, spec)) is not None  # from disk


class TestBatchedAccess:
    def test_get_many_put_many_round_trip(self, tmp_path, topo, spec):
        store = ResultStore(tmp_path)
        specs = [dataclasses.replace(spec, seed=s) for s in (1, 2, 3)]
        items = {store.key_for(topo, s): run_experiment(topo, s)
                 for s in specs}
        store.put_many(items)

        fresh = ResultStore(tmp_path)  # simulates a new process
        keys = list(items)
        found = fresh.get_many(keys + ["0" * 64])
        assert set(found) == set(keys)
        assert fresh.hits == 3 and fresh.misses == 1
        for key in keys:
            assert np.array_equal(found[key].per_replication_delays(),
                                  items[key].per_replication_delays())

    def test_get_many_counts_duplicate_keys_as_hits(self, topo, spec):
        store = ResultStore()
        summary = run_experiment(topo, spec)
        key = store.key_for(topo, spec)
        store.put(key, summary)
        assert store.get_many([key, key, key]) == {key: summary}
        assert store.hits == 3 and store.misses == 0

    def test_absent_keys_answered_by_index_without_file_io(
        self, tmp_path, topo, spec, monkeypatch
    ):
        run_experiment(topo, spec, store=ResultStore(tmp_path))
        fresh = ResultStore(tmp_path)
        loads = []
        orig = ResultStore._load_disk
        monkeypatch.setattr(
            ResultStore, "_load_disk",
            lambda self, key: loads.append(key) or orig(self, key),
        )
        # Keys not in the one-scan directory index never touch a file.
        assert fresh.get_many(["f" * 64, "e" * 64]) == {}
        assert loads == []
        assert fresh.misses == 2

    def test_put_updates_already_built_index(self, tmp_path, topo, spec):
        store = ResultStore(tmp_path)
        key = store.key_for(topo, spec)
        assert store.get(key) is None  # builds the (empty) index
        summary = run_experiment(topo, spec)
        store.put(key, summary)
        store.clear()  # force the next get through the disk path
        assert store.get(key) is not None

    def test_digest_verified_once_per_key_per_process(
        self, tmp_path, topo, spec, monkeypatch
    ):
        import repro.exec.store as store_mod

        run_experiment(topo, spec, store=ResultStore(tmp_path))
        fresh = ResultStore(tmp_path)
        key = fresh.key_for(topo, spec)  # computed before counting begins

        calls = []
        real = store_mod.hashlib.sha256
        monkeypatch.setattr(store_mod.hashlib, "sha256",
                            lambda *a: calls.append(1) or real(*a))
        assert fresh.get(key) is not None  # first disk load hashes payload
        first = len(calls)
        assert first >= 1
        fresh.clear()
        assert fresh.get(key) is not None  # verdict memoized: no re-hash
        assert len(calls) == first
