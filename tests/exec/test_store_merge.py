"""Tests for mergeable shard stores: verify / merge / gc / manifests."""

import dataclasses
import json

import numpy as np
import pytest

from repro.exec import (
    MergeError,
    ResultStore,
    gc_store,
    merge_store,
    read_manifest,
    update_manifest,
    verify_store,
)
from repro.net.generators import line_topology
from repro.sim.engine import ENGINE_VERSION
from repro.sim.runner import ExperimentSpec, run_experiment


@pytest.fixture
def topo():
    return line_topology(5, prr=0.9)


@pytest.fixture
def spec():
    return ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2,
                          seed=3, n_replications=2)


def fill(cache_dir, topo, seeds):
    """Run a few cheap experiments into a store; returns {key: summary}."""
    store = ResultStore(cache_dir)
    out = {}
    for seed in seeds:
        spec = ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2,
                              seed=seed, n_replications=1)
        key = store.key_for(topo, spec)
        out[key] = run_experiment(topo, spec, store=store)
    return out


def rewrite_header(path, **changes):
    """Edit an entry's JSON header in place (payload untouched)."""
    head, payload = path.read_bytes().split(b"\n", 1)
    meta = json.loads(head)
    meta.update(changes)
    path.write_bytes(json.dumps(meta).encode() + b"\n" + payload)


class TestIndexStaleness:
    def test_get_falls_through_to_disk_on_index_miss(self, tmp_path, topo,
                                                     spec):
        reader = ResultStore(tmp_path)
        key = reader.key_for(topo, spec)
        assert reader.get(key) is None  # builds an empty index

        # Another process writes the entry after the index was built.
        writer = ResultStore(tmp_path)
        summary = run_experiment(topo, spec)
        writer.put(key, summary)

        got = reader.get(key)  # index says miss; disk probe must win
        assert got is not None
        assert np.array_equal(got.per_replication_delays(),
                              summary.per_replication_delays())

    def test_get_many_sees_cross_process_writes(self, tmp_path, topo):
        reader = ResultStore(tmp_path)
        assert reader.get_many(["e" * 64]) == {}  # index built, empty
        items = fill(tmp_path, topo, seeds=(1, 2))
        found = reader.get_many(list(items))
        assert set(found) == set(items)

    def test_truly_absent_key_still_misses(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        reader = ResultStore(tmp_path)
        assert reader.get("f" * 64) is None


class TestVerify:
    def test_clean_store(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1, 2))
        report = verify_store(tmp_path)
        assert report.clean
        assert report.counts == {"ok": 2}
        assert all(e.engine == ENGINE_VERSION for e in report.entries)

    def test_empty_or_absent_directory(self, tmp_path):
        assert verify_store(tmp_path).clean
        assert verify_store(tmp_path / "never-created").clean

    def test_truncated_entry_without_separator_reported_not_crashed(
        self, tmp_path, topo
    ):
        fill(tmp_path, topo, seeds=(1,))
        (entry,) = tmp_path.glob("*.rsum")
        entry.write_bytes(b'{"format": 1, "key": "abc')  # killed mid-header
        report = verify_store(tmp_path)
        assert report.counts == {"truncated": 1}
        assert not report.clean
        assert "separator" in report.entries[0].detail

    def test_corrupt_payload_classified(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        (entry,) = tmp_path.glob("*.rsum")
        raw = bytearray(entry.read_bytes())
        raw[-1] ^= 0xFF
        entry.write_bytes(bytes(raw))
        report = verify_store(tmp_path)
        assert report.counts == {"corrupt": 1}
        assert "digest mismatch" in report.entries[0].detail

    def test_misplaced_entry_classified(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        (entry,) = tmp_path.glob("*.rsum")
        entry.rename(tmp_path / ("0" * 64 + ".rsum"))
        report = verify_store(tmp_path)
        assert report.counts == {"misplaced": 1}

    def test_stale_engine_entry_is_intact_but_flagged(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        (entry,) = tmp_path.glob("*.rsum")
        rewrite_header(entry, engine="1999.0")
        report = verify_store(tmp_path)
        assert report.counts == {"stale": 1}
        assert report.entries[0].intact
        assert not report.problems  # stale is valid, just old
        assert report.clean

    def test_orphaned_tmp_files_reported(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        (tmp_path / "abc123.tmp").write_bytes(b"half a write")
        report = verify_store(tmp_path)
        assert report.tmp_files == ["abc123.tmp"]
        assert not report.clean

    def test_store_verify_convenience(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        assert ResultStore(tmp_path).verify().clean
        assert ResultStore().verify().entries == []  # memory-only store


class TestGc:
    def test_gc_removes_damage_keeps_good(self, tmp_path, topo):
        items = fill(tmp_path, topo, seeds=(1, 2))
        (tmp_path / "orphan.tmp").write_bytes(b"x" * 10)
        bad = tmp_path / ("0" * 64 + ".rsum")
        bad.write_bytes(b"no separator here")
        report = gc_store(tmp_path)
        assert set(report.removed) == {"orphan.tmp", bad.name}
        assert report.bytes_freed > 0
        assert set(p.name for p in tmp_path.glob("*.rsum")) \
            == {f"{k}.rsum" for k in items}

    def test_gc_keeps_stale_unless_asked(self, tmp_path, topo):
        fill(tmp_path, topo, seeds=(1,))
        (entry,) = tmp_path.glob("*.rsum")
        rewrite_header(entry, engine="1999.0")
        assert gc_store(tmp_path).removed == []
        assert gc_store(tmp_path, stale=True).removed == [entry.name]


class TestManifest:
    def test_round_trip_and_union(self, tmp_path):
        update_manifest(tmp_path, "a" * 64, name="g", shard_label="0/2")
        update_manifest(tmp_path, "a" * 64, shard_label="1/2")
        manifest = read_manifest(tmp_path)
        assert manifest["engine"] == ENGINE_VERSION
        assert manifest["grids"]["a" * 64] \
            == {"name": "g", "shards": ["0/2", "1/2"]}

    def test_engine_change_starts_fresh(self, tmp_path):
        update_manifest(tmp_path, "a" * 64, engine="1999.0")
        manifest = update_manifest(tmp_path, "b" * 64)
        assert manifest["engine"] == ENGINE_VERSION
        assert list(manifest["grids"]) == ["b" * 64]

    def test_unreadable_manifest_is_none(self, tmp_path):
        assert read_manifest(tmp_path) is None
        (tmp_path / "_manifest.json").write_text("not json")
        assert read_manifest(tmp_path) is None

    def test_manifest_invisible_to_the_entry_index(self, tmp_path, topo,
                                                   spec):
        update_manifest(tmp_path, "a" * 64)
        store = ResultStore(tmp_path)
        assert store.get(store.key_for(topo, spec)) is None
        assert verify_store(tmp_path).entries == []


class TestMerge:
    def test_union_of_disjoint_shards(self, tmp_path, topo):
        a = fill(tmp_path / "a", topo, seeds=(1, 2))
        b = fill(tmp_path / "b", topo, seeds=(3,))
        report = merge_store(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])
        assert (report.copied, report.skipped, report.rejected) == (3, 0, 0)
        merged = ResultStore(tmp_path / "m")
        for key, summary in {**a, **b}.items():
            got = merged.get(key)
            assert np.array_equal(got.per_replication_delays(),
                                  summary.per_replication_delays())

    def test_identical_entries_skipped_not_recopied(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1, 2))
        fill(tmp_path / "b", topo, seeds=(2, 3))  # seed 2 overlaps
        merge_store(tmp_path / "m", [tmp_path / "a"])
        report = merge_store(tmp_path / "m", [tmp_path / "b"])
        assert (report.copied, report.skipped) == (1, 1)

    def test_merge_is_idempotent(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1,))
        merge_store(tmp_path / "m", [tmp_path / "a"])
        report = merge_store(tmp_path / "m", [tmp_path / "a"])
        assert (report.copied, report.skipped) == (0, 1)

    def test_rejects_mixed_engine_versions(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1,))
        fill(tmp_path / "b", topo, seeds=(2,))
        (entry,) = (tmp_path / "b").glob("*.rsum")
        rewrite_header(entry, engine="1999.0")
        with pytest.raises(MergeError, match="engine-version conflict"):
            merge_store(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])
        # Refusal happens before anything lands at the destination.
        assert not list((tmp_path / "m").glob("*.rsum"))

    def test_rejects_disjoint_grid_manifests(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1,))
        update_manifest(tmp_path / "a", "a" * 64, name="grid-a")
        fill(tmp_path / "m", topo, seeds=(2,))
        update_manifest(tmp_path / "m", "b" * 64, name="grid-b")
        with pytest.raises(MergeError, match="grid-fingerprint conflict"):
            merge_store(tmp_path / "m", [tmp_path / "a"])
        report = merge_store(tmp_path / "m", [tmp_path / "a"],
                             allow_mixed=True)
        assert report.copied == 1
        assert set(read_manifest(tmp_path / "m")["grids"]) \
            == {"a" * 64, "b" * 64}

    def test_shared_grid_manifests_merge(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1,))
        update_manifest(tmp_path / "a", "a" * 64, name="g", shard_label="0/2")
        fill(tmp_path / "b", topo, seeds=(2,))
        update_manifest(tmp_path / "b", "a" * 64, shard_label="1/2")
        merge_store(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])
        manifest = read_manifest(tmp_path / "m")
        assert manifest["grids"]["a" * 64]["shards"] == ["0/2", "1/2"]
        assert manifest["grids"]["a" * 64]["name"] == "g"

    def test_damaged_source_entries_rejected_not_fatal(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1, 2))
        (entry, _) = sorted((tmp_path / "a").glob("*.rsum"))
        entry.write_bytes(b"truncated")
        report = merge_store(tmp_path / "m", [tmp_path / "a"])
        assert (report.copied, report.rejected) == (1, 1)

    def test_key_collision_with_different_payload_refused(self, tmp_path,
                                                          topo):
        import hashlib

        fill(tmp_path / "a", topo, seeds=(1,))
        fill(tmp_path / "m", topo, seeds=(1,))
        # Forge a different-but-intact payload under the same key at the
        # destination (what a non-deterministic engine would produce).
        (entry,) = (tmp_path / "m").glob("*.rsum")
        head, payload = entry.read_bytes().split(b"\n", 1)
        meta = json.loads(head)
        forged = payload + b"\x00"
        meta["digest"] = hashlib.sha256(forged).hexdigest()
        entry.write_bytes(json.dumps(meta).encode() + b"\n" + forged)
        with pytest.raises(MergeError, match="collision"):
            merge_store(tmp_path / "m", [tmp_path / "a"])

    def test_merging_into_a_source_is_refused(self, tmp_path, topo):
        fill(tmp_path / "a", topo, seeds=(1,))
        with pytest.raises(ValueError, match="destination"):
            merge_store(tmp_path / "a", [tmp_path / "a"])

    def test_no_sources_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            merge_store(tmp_path / "m", [])
