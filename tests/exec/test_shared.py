"""Tests for shared-memory topology broadcast and executor hygiene.

Covers the transport round trip (zero-copy, read-only, fingerprint
inheritance), the serial / cold-pool / warm-pool equivalence contract
with and without shared memory, and the no-leaks guarantee: after
``ExecutionContext.close()`` neither shared segments nor worker
processes survive.
"""

import multiprocessing
import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.exec import (
    ExecutionContext,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.exec.shared import PickledRef, SharedTopologyRef, resolve_ref
from repro.net.generators import line_topology
from repro.net.topology import Topology
from repro.sim.runner import ExperimentSpec, run_experiments


@pytest.fixture
def topo():
    return line_topology(6, prr=0.9)


def _fig10_style_specs(reps=2):
    return [
        ExperimentSpec(protocol=proto, duty_ratio=duty, n_packets=2,
                       seed=11, n_replications=reps)
        for proto in ("opt", "dbao", "of")
        for duty in (0.1, 0.2)
    ]


def _segment_names(executor):
    names = []
    for handle in executor._handles.values():
        for spec in (handle.ref.prr, handle.ref.positions, handle.ref.rssi):
            if spec is not None:
                names.append(spec.name)
    return names


def _assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestTopologyRoundTrip:
    def test_from_shared_is_zero_copy_and_read_only(self, topo):
        handle = topo.to_shared()
        try:
            clone = Topology.from_shared(handle.ref)
            assert np.array_equal(clone.prr, topo.prr)
            assert np.array_equal(clone.adjacency, topo.adjacency)
            assert np.array_equal(clone.audible, topo.audible)
            # Zero-copy: the attached view does not own its buffer ...
            assert not clone.prr.flags.owndata
            # ... and the shared substrate cannot be mutated by accident.
            assert not clone.prr.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                clone.prr[0, 1] = 0.5
        finally:
            handle.close()

    def test_fingerprint_inherited_not_recomputed(self, topo):
        handle = topo.to_shared()
        try:
            clone = Topology.from_shared(handle.ref)
            assert clone._fingerprint == topo.fingerprint()
            assert clone.fingerprint() == topo.fingerprint()
        finally:
            handle.close()

    def test_optional_arrays_travel(self):
        rng = np.random.default_rng(0)
        prr = np.zeros((4, 4))
        prr[0, 1] = prr[1, 2] = prr[2, 3] = 0.8
        positions = rng.uniform(0, 10, size=(4, 2))
        rssi = np.where(prr > 0, -60.0, np.nan)
        topo = Topology(prr, positions=positions, rssi=rssi)
        handle = topo.to_shared()
        try:
            clone = Topology.from_shared(handle.ref)
            assert np.array_equal(clone.positions, topo.positions)
            assert np.array_equal(clone.rssi, topo.rssi, equal_nan=True)
        finally:
            handle.close()

    def test_ref_is_small_and_picklable(self):
        big = line_topology(80, prr=0.9)  # ~50 KiB of PRR matrix
        handle = big.to_shared()
        try:
            blob = pickle.dumps(handle.ref, pickle.HIGHEST_PROTOCOL)
            # The whole point: a few hundred bytes instead of the matrix.
            assert len(blob) < 2048
            assert len(blob) * 10 < len(pickle.dumps(big))
            restored = pickle.loads(blob)
            assert isinstance(restored, SharedTopologyRef)
            assert restored.token == big.fingerprint()
        finally:
            handle.close()

    def test_handle_close_unlinks_segments(self, topo):
        handle = topo.to_shared()
        name = handle.ref.prr.name
        handle.close()
        handle.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_pickled_ref_fallback_resolves(self, topo):
        ref = PickledRef(topo.fingerprint(),
                         pickle.dumps(topo, pickle.HIGHEST_PROTOCOL))
        clone = resolve_ref(ref)
        assert np.array_equal(clone.prr, topo.prr)
        # Same token resolves from the memo, not a fresh unpickle.
        assert resolve_ref(ref) is clone


class TestBackendEquivalence:
    """Satellite contract: serial vs cold-pool vs warm-pool, with and
    without shared-memory transport, produce bit-identical summaries."""

    def test_all_backends_bit_identical_on_fig10_grid(self, topo):
        specs = _fig10_style_specs()
        reference = run_experiments(topo, specs, executor=SerialExecutor())
        ref_blobs = [pickle.dumps(s.results) for s in reference]
        variants = [
            ParallelExecutor(jobs=2, warm=True, shared_memory=True),
            ParallelExecutor(jobs=2, warm=True, shared_memory=False),
            ParallelExecutor(jobs=2, warm=False, shared_memory=True),
            ParallelExecutor(jobs=2, warm=False, shared_memory=False),
        ]
        for executor in variants:
            with executor:
                summaries = run_experiments(topo, specs, executor=executor)
            blobs = [pickle.dumps(s.results) for s in summaries]
            assert blobs == ref_blobs, f"payload drift under {executor!r}"

    def test_shared_broadcast_shrinks_pickled_bytes(self):
        big = line_topology(80, prr=0.9)  # large enough that the matrix
        specs = _fig10_style_specs()      # dominates the chunk payloads
        with ParallelExecutor(jobs=2, shared_memory=False) as fallback:
            run_experiments(big, specs, executor=fallback)
        with ParallelExecutor(jobs=2, shared_memory=True) as shared:
            run_experiments(big, specs, executor=shared)
            assert shared.stats.shared_bytes > 0
        # The pickle fallback ships the topology in every chunk payload;
        # the shared path ships segment names.
        assert shared.stats.pickled_bytes * 10 < fallback.stats.pickled_bytes


class TestNoLeaks:
    def test_context_close_releases_segments_and_workers(self, topo):
        before = set(multiprocessing.active_children())
        ctx = ExecutionContext(
            executor=ParallelExecutor(jobs=2), store=ResultStore()
        )
        run_experiments(topo, _fig10_style_specs(reps=1),
                        executor=ctx.executor, store=ctx.store)
        names = _segment_names(ctx.executor)
        assert names, "shared transport was expected to engage"
        spawned = set(multiprocessing.active_children()) - before
        assert spawned, "the pool was expected to spawn workers"

        ctx.close()

        _assert_unlinked(names)
        assert ctx.executor._pool is None
        alive = {p for p in spawned if p.is_alive()}
        assert not alive, f"worker processes leaked: {alive}"

    def test_executor_close_after_crash_releases_segments(self, topo):
        # Even when the pool died mid-dispatch, close() must not leak
        # the broadcast segments registered before the crash.
        ex = ParallelExecutor(jobs=2)
        try:
            ex.map(_crash_with_broadcast, [(0, 0), (0, 1), (1, 0)],
                   broadcast=(topo,))
        except Exception:
            pass
        handle_names = _segment_names(ex)
        ex.close()
        if handle_names:
            _assert_unlinked(handle_names)


def _crash_with_broadcast(_topo, _task):  # pragma: no cover - worker side
    import os

    os._exit(7)
