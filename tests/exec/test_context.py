"""Tests for the process-wide execution context."""

import numpy as np
import pytest

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    configure_execution,
    execution_context,
    reset_execution,
    use_execution,
)


@pytest.fixture(autouse=True)
def _restore_context():
    yield
    reset_execution()


def _double(x):
    return 2 * x


class TestContext:
    def test_default_is_serial_with_memory_store(self):
        ctx = reset_execution()
        assert isinstance(ctx.executor, SerialExecutor)
        assert ctx.store.cache_dir is None
        assert execution_context() is ctx

    def test_configure_installs_parallel_and_disk(self, tmp_path):
        ctx = configure_execution(jobs=2, cache_dir=tmp_path)
        assert isinstance(ctx.executor, ParallelExecutor)
        assert ctx.executor.jobs == 2
        assert ctx.store.cache_dir == tmp_path
        assert execution_context() is ctx

    def test_use_execution_restores_previous(self, tmp_path):
        before = reset_execution()
        with use_execution(jobs=4, cache_dir=tmp_path) as ctx:
            assert execution_context() is ctx
            assert ctx.executor.jobs == 4
        assert execution_context() is before

    def test_use_execution_noop_when_unconfigured(self):
        before = reset_execution()
        with use_execution() as ctx:
            assert ctx is before
        assert execution_context() is before

    def test_use_execution_restores_on_error(self):
        before = reset_execution()
        with pytest.raises(RuntimeError):
            with use_execution(jobs=2):
                raise RuntimeError("boom")
        assert execution_context() is before


class TestContextClose:
    def test_use_execution_closes_temporary_executor(self):
        reset_execution()
        with use_execution(jobs=2) as ctx:
            assert ctx.executor.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert ctx.executor._pool is not None  # warm pool armed
        assert ctx.executor._pool is None  # released with the block

    def test_reset_closes_replaced_context(self):
        ctx = configure_execution(jobs=2)
        ctx.executor.map(_double, [1, 2, 3, 4])
        assert ctx.executor._pool is not None
        reset_execution()
        assert ctx.executor._pool is None

    def test_close_is_idempotent_and_rearmable(self):
        ctx = configure_execution(jobs=2)
        ctx.executor.map(_double, [1, 2])
        ctx.close()
        ctx.close()
        assert ctx.executor._pool is None
        # A closed context's executor transparently re-arms.
        assert ctx.executor.map(_double, [5]) == [10]
        ctx.close()


class TestHarnessIntegration:
    def test_trace_sweep_served_from_store_on_second_call(self):
        from repro.experiments._trace_sweep import trace_duty_sweep

        reset_execution()
        store = execution_context().store
        first = trace_duty_sweep(scale="smoke")
        misses_after_first = store.misses
        assert misses_after_first > 0
        second = trace_duty_sweep(scale="smoke")
        # Every grid cell of the second call is a store hit (fig11 reads
        # fig10's grid for free, replacing the old lru_cache semantics).
        assert store.misses == misses_after_first
        assert store.hits >= misses_after_first
        for proto, by_duty in first.items():
            for duty, summary in by_duty.items():
                assert np.array_equal(
                    summary.per_replication_delays(),
                    second[proto][duty].per_replication_delays(),
                )

    def test_run_experiment_by_id_backend_passthrough(self, tmp_path):
        from repro.experiments import run_experiment_by_id

        reset_execution()
        result = run_experiment_by_id(
            "fig10", scale="smoke", jobs=2, cache_dir=tmp_path
        )
        assert result.experiment_id == "fig10"
        assert list(tmp_path.glob("*.rsum"))  # summaries persisted
        # The temporary context was uninstalled afterwards.
        assert isinstance(execution_context().executor, SerialExecutor)
        # A rerun against the same cache dir is answered without simulating.
        with use_execution(cache_dir=tmp_path) as ctx:
            run_experiment_by_id("fig10", scale="smoke")
            assert ctx.store.misses == 0 and ctx.store.hits > 0
