"""Tests for the pluggable execution backends."""

import os

import numpy as np
import pytest

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    WorkerCrashError,
    resolve_executor,
)
from repro.net.generators import line_topology
from repro.sim.runner import ExperimentSpec, run_experiment


def _square(x):
    return x * x


def _crash(_task):
    os._exit(13)  # simulate a segfault/OOM-kill: no exception, no return


def _explode(task):
    raise ValueError(f"bad task {task}")


def _pid(_task):
    return os.getpid()


def _add_offset(offset, task):
    return offset + task


@pytest.fixture
def topo():
    return line_topology(5, prr=0.9)


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []


class TestParallelExecutor:
    def test_maps_in_order(self):
        assert ParallelExecutor(jobs=2).map(_square, list(range(10))) == [
            x * x for x in range(10)
        ]

    def test_single_job_runs_inline(self):
        # jobs=1 must not pay for a pool (and never pickles anything).
        unpicklable = lambda x: x + 1  # noqa: E731
        assert ParallelExecutor(jobs=1).map(unpicklable, [1, 2]) == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=2, chunksize=0)

    def test_chunksize_default_covers_all_tasks(self):
        ex = ParallelExecutor(jobs=2)
        assert ex._chunksize_for(1) >= 1
        assert ex._chunksize_for(1000) * 2 * 4 >= 1000

    def test_worker_crash_surfaced(self):
        with ParallelExecutor(jobs=2) as ex:
            with pytest.raises(WorkerCrashError, match="worker process died"):
                ex.map(_crash, [1, 2, 3])

    def test_task_exception_propagates(self):
        with ParallelExecutor(jobs=2) as ex:
            with pytest.raises(ValueError, match="bad task"):
                ex.map(_explode, [1, 2])

    def test_warm_pool_reused_across_dispatches(self):
        with ParallelExecutor(jobs=2) as ex:
            first = set(ex.map(_pid, list(range(8))))
            pool = ex._pool
            second = set(ex.map(_pid, list(range(8))))
            assert ex._pool is pool  # same pool object, no respawn
            # Workers spawn lazily, so per-dispatch PID sets can differ,
            # but one persistent pool caps the distinct PIDs at `jobs`
            # (two cold dispatches could use up to 2 * jobs).
            assert len(first | second) <= 2
            assert ex.stats.pool_spinups == 1
            assert ex.stats.dispatches == 2

    def test_cold_executor_tears_pool_down_per_dispatch(self):
        with ParallelExecutor(jobs=2, warm=False) as ex:
            ex.map(_square, list(range(4)))
            assert ex._pool is None  # torn down eagerly
            ex.map(_square, list(range(4)))
            assert ex.stats.pool_spinups == 2

    def test_rearm_after_worker_crash(self):
        with ParallelExecutor(jobs=2) as ex:
            with pytest.raises(WorkerCrashError):
                ex.map(_crash, [1, 2, 3])
            assert ex._pool is None  # the dead pool was discarded
            # The next dispatch re-arms a fresh pool and works.
            assert ex.map(_square, list(range(6))) == [
                x * x for x in range(6)
            ]
            assert ex.stats.pool_spinups == 2

    def test_map_usable_again_after_close(self):
        ex = ParallelExecutor(jobs=2)
        ex.map(_square, [1, 2, 3])
        ex.close()
        assert ex._pool is None
        assert ex.map(_square, [2, 3]) == [4, 9]  # transparent re-arm
        ex.close()
        ex.close()  # idempotent

    def test_generator_input_consumed_exactly_once(self):
        pulls = []

        def tasks():
            for x in range(5):
                pulls.append(x)
                yield x

        # Inline fallback path (jobs=1) and pooled path both must
        # materialize the iterable exactly once.
        assert ParallelExecutor(jobs=1).map(_square, tasks()) == [
            x * x for x in range(5)
        ]
        assert pulls == list(range(5))
        pulls.clear()
        with ParallelExecutor(jobs=2) as ex:
            assert ex.map(_square, tasks()) == [x * x for x in range(5)]
        assert pulls == list(range(5))

    def test_broadcast_matches_serial(self):
        tasks = list(range(10))
        expected = SerialExecutor().map(_add_offset, tasks, broadcast=(100,))
        assert expected == [100 + x for x in tasks]
        with ParallelExecutor(jobs=2) as ex:
            assert ex.map(_add_offset, tasks, broadcast=(100,)) == expected

    def test_repr_shows_chunk_heuristic(self):
        assert "ceil(n/8)" in repr(ParallelExecutor(jobs=2))
        assert "chunksize=5" in repr(ParallelExecutor(jobs=2, chunksize=5))
        assert "cold" in repr(ParallelExecutor(jobs=2, warm=False))
        assert "broadcast=pickle" in repr(
            ParallelExecutor(jobs=2, shared_memory=False)
        )

    def test_dispatch_stats_recorded(self):
        with ParallelExecutor(jobs=2, chunksize=3) as ex:
            ex.map(_square, list(range(10)))
            assert ex.last.tasks == 10
            assert ex.last.chunks == 4  # ceil(10 / 3)
            assert ex.last.pickled_bytes > 0
            lo, mean, hi = ex.last.task_spread()
            assert 0 <= lo <= mean <= hi
        # The inline fallback records tasks but never pickles.
        ex1 = ParallelExecutor(jobs=1)
        ex1.map(_square, list(range(4)))
        assert ex1.stats.tasks == 4
        assert ex1.stats.pickled_bytes == 0 and ex1.stats.chunks == 0


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor(jobs=1), SerialExecutor)

    def test_jobs_alone_selects_parallel(self):
        ex = resolve_executor(jobs=3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 3

    def test_explicit_backend(self):
        assert isinstance(resolve_executor("serial", jobs=8), SerialExecutor)
        assert isinstance(resolve_executor("parallel"), ParallelExecutor)
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_executor("gpu")


class TestBackendDeterminism:
    """The hard contract: backends are bit-identical, per replication."""

    @pytest.mark.parametrize("protocol", ["opt", "dbao", "of"])
    def test_serial_and_parallel_replications_identical(self, topo, protocol):
        spec = ExperimentSpec(
            protocol=protocol, duty_ratio=0.2, n_packets=2, seed=11,
            n_replications=3,
        )
        serial = run_experiment(topo, spec, executor=SerialExecutor())
        parallel = run_experiment(topo, spec, executor=ParallelExecutor(jobs=2))
        assert np.array_equal(
            serial.per_replication_delays(),
            parallel.per_replication_delays(),
        )
        assert serial.mean_failures() == parallel.mean_failures()
        assert serial.mean_tx_attempts() == parallel.mean_tx_attempts()

    def test_executor_none_matches_serial(self, topo):
        spec = ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2,
                              seed=5, n_replications=2)
        assert np.array_equal(
            run_experiment(topo, spec).per_replication_delays(),
            run_experiment(topo, spec,
                           executor=SerialExecutor()).per_replication_delays(),
        )
