"""Tests for the pluggable execution backends."""

import os

import numpy as np
import pytest

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    WorkerCrashError,
    resolve_executor,
)
from repro.net.generators import line_topology
from repro.sim.runner import ExperimentSpec, run_experiment


def _square(x):
    return x * x


def _crash(_task):
    os._exit(13)  # simulate a segfault/OOM-kill: no exception, no return


def _explode(task):
    raise ValueError(f"bad task {task}")


@pytest.fixture
def topo():
    return line_topology(5, prr=0.9)


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []


class TestParallelExecutor:
    def test_maps_in_order(self):
        assert ParallelExecutor(jobs=2).map(_square, list(range(10))) == [
            x * x for x in range(10)
        ]

    def test_single_job_runs_inline(self):
        # jobs=1 must not pay for a pool (and never pickles anything).
        unpicklable = lambda x: x + 1  # noqa: E731
        assert ParallelExecutor(jobs=1).map(unpicklable, [1, 2]) == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=2, chunksize=0)

    def test_chunksize_default_covers_all_tasks(self):
        ex = ParallelExecutor(jobs=2)
        assert ex._chunksize_for(1) >= 1
        assert ex._chunksize_for(1000) * 2 * 4 >= 1000

    def test_worker_crash_surfaced(self):
        with pytest.raises(WorkerCrashError, match="worker process died"):
            ParallelExecutor(jobs=2).map(_crash, [1, 2, 3])

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="bad task"):
            ParallelExecutor(jobs=2).map(_explode, [1, 2])


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor(jobs=1), SerialExecutor)

    def test_jobs_alone_selects_parallel(self):
        ex = resolve_executor(jobs=3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 3

    def test_explicit_backend(self):
        assert isinstance(resolve_executor("serial", jobs=8), SerialExecutor)
        assert isinstance(resolve_executor("parallel"), ParallelExecutor)
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_executor("gpu")


class TestBackendDeterminism:
    """The hard contract: backends are bit-identical, per replication."""

    @pytest.mark.parametrize("protocol", ["opt", "dbao", "of"])
    def test_serial_and_parallel_replications_identical(self, topo, protocol):
        spec = ExperimentSpec(
            protocol=protocol, duty_ratio=0.2, n_packets=2, seed=11,
            n_replications=3,
        )
        serial = run_experiment(topo, spec, executor=SerialExecutor())
        parallel = run_experiment(topo, spec, executor=ParallelExecutor(jobs=2))
        assert np.array_equal(
            serial.per_replication_delays(),
            parallel.per_replication_delays(),
        )
        assert serial.mean_failures() == parallel.mean_failures()
        assert serial.mean_tx_attempts() == parallel.mean_tx_attempts()

    def test_executor_none_matches_serial(self, topo):
        spec = ExperimentSpec(protocol="dbao", duty_ratio=0.2, n_packets=2,
                              seed=5, n_replications=2)
        assert np.array_equal(
            run_experiment(topo, spec).per_replication_delays(),
            run_experiment(topo, spec,
                           executor=SerialExecutor()).per_replication_delays(),
        )
