"""Tests for ScenarioGrid expansion, serialization and file loading."""

import json

import pytest

from repro.scenario import (
    Scenario,
    ScenarioError,
    ScenarioGrid,
    TopologySpec,
    load_scenario_file,
)

BASE = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=7)


class TestExpansion:
    def test_no_axes_is_a_single_cell(self):
        grid = ScenarioGrid(BASE)
        assert len(grid) == 1
        assert grid.combos() == [()]
        assert grid.scenarios() == [BASE]

    def test_cartesian_order_last_axis_fastest(self):
        grid = ScenarioGrid(BASE, axes={
            "protocol": ("opt", "dbao"),
            "duty_ratio": (0.05, 0.1, 0.2),
        })
        assert len(grid) == 6
        assert grid.combos() == [
            ("opt", 0.05), ("opt", 0.1), ("opt", 0.2),
            ("dbao", 0.05), ("dbao", 0.1), ("dbao", 0.2),
        ]
        assert [s.protocol for s in grid.scenarios()] \
            == ["opt"] * 3 + ["dbao"] * 3

    def test_items_pairs_combos_with_cells(self):
        grid = ScenarioGrid(BASE, axes={"n_packets": (1, 2)})
        for combo, scenario in grid.items():
            assert scenario.n_packets == combo[0]

    def test_unknown_axis_suggests_field(self):
        with pytest.raises(ScenarioError, match="duty_ratio"):
            ScenarioGrid(BASE, axes={"duty_ration": (0.1,)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError, match="no values"):
            ScenarioGrid(BASE, axes={"protocol": ()})

    def test_invalid_cell_rejected_eagerly(self):
        with pytest.raises(ScenarioError, match="duty ratio"):
            ScenarioGrid(BASE, axes={"duty_ratio": (0.1, 2.0)})

    def test_topology_axis_values_become_specs(self):
        grid = ScenarioGrid(BASE, axes={
            "topology": ({"kind": "line", "params": {"n_sensors": 5}},
                         {"kind": "star", "params": {"n_sensors": 5}}),
        })
        kinds = [s.topology.kind for s in grid.scenarios()]
        assert kinds == ["line", "star"]
        assert all(isinstance(s.topology, TopologySpec)
                   for s in grid.scenarios())


class TestSerialization:
    def test_dict_round_trip_is_identity(self):
        grid = ScenarioGrid(BASE, axes={"protocol": ("opt", "dbao"),
                                        "sim": ({}, {"fast_forward": False})},
                            name="demo")
        assert ScenarioGrid.from_dict(grid.to_dict()) == grid

    def test_json_round_trip_preserves_fingerprint(self):
        grid = ScenarioGrid(BASE, axes={"duty_ratio": (0.05, 0.2)})
        again = ScenarioGrid.from_dict(json.loads(grid.to_json()))
        assert again.fingerprint() == grid.fingerprint()

    def test_fingerprint_covers_cells_in_order(self):
        a = ScenarioGrid(BASE, axes={"protocol": ("opt", "dbao")})
        b = ScenarioGrid(BASE, axes={"protocol": ("dbao", "opt")})
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_file_field_rejected(self):
        with pytest.raises(ScenarioError, match="scenario-file field"):
            ScenarioGrid.from_dict({"scenario": BASE.to_dict(), "axis": {}})

    def test_future_schema_rejected(self):
        with pytest.raises(ScenarioError, match="schema"):
            ScenarioGrid.from_dict({"schema": 99,
                                    "scenario": BASE.to_dict()})

    def test_missing_scenario_object_rejected(self):
        with pytest.raises(ScenarioError, match="'scenario'"):
            ScenarioGrid.from_dict({"schema": 1, "name": "x"})


class TestLoadScenarioFile:
    def test_loads_grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        grid = ScenarioGrid(BASE, axes={"protocol": ("opt", "of")}, name="g")
        path.write_text(grid.to_json())
        loaded = load_scenario_file(path)
        assert loaded == grid

    def test_loads_bare_scenario_file(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(BASE.to_json())
        loaded = load_scenario_file(path)
        assert len(loaded) == 1 and loaded.scenarios() == [BASE]

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError, match="broken.json"):
            load_scenario_file(path)

    def test_misspelled_scenario_field_in_file(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenario": {"protocol": "dbao", "duty_ratio": 0.1,
                         "n_packets": 2, "schedule_jiter": 0.1},
        }))
        with pytest.raises(ScenarioError, match="schedule_jitter"):
            load_scenario_file(path)
