"""Tests for the scenario-driven runner entry point."""

import pickle

import dataclasses
import pytest

from repro.exec import ResultStore, SerialExecutor
from repro.scenario import Scenario, ScenarioGrid, TopologySpec, build_topology
from repro.sim.runner import ExperimentSpec, run_experiments, run_scenarios

LINE = TopologySpec(kind="line", params={"n_sensors": 8, "prr": 0.9})
BASE = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=5,
                topology=LINE)


def test_results_come_back_in_input_order():
    grid = ScenarioGrid(BASE, axes={"protocol": ("opt", "dbao", "of")})
    summaries = run_scenarios(grid.scenarios())
    assert [s.spec.protocol for s in summaries] == ["opt", "dbao", "of"]


def test_matches_run_experiments_bit_for_bit():
    spec = ExperimentSpec(protocol="dbao", duty_ratio=0.1, n_packets=2,
                          seed=5, n_replications=2)
    topo = build_topology(LINE)
    (via_spec,) = run_experiments(topo, [spec])
    (via_scenario,) = run_scenarios(
        [dataclasses.replace(BASE, n_replications=2)]
    )
    assert [pickle.dumps(r) for r in via_spec.results] \
        == [pickle.dumps(r) for r in via_scenario.results]


def test_mixed_topologies_group_per_substrate():
    star = dataclasses.replace(
        BASE, topology=TopologySpec(kind="star", params={"n_sensors": 8})
    )
    line_a, line_b = BASE, dataclasses.replace(BASE, protocol="of")
    summaries = run_scenarios([line_a, star, line_b])
    assert [s.spec.protocol for s in summaries] == ["dbao", "dbao", "of"]
    # Grouping must not change per-scenario results vs one-at-a-time runs.
    for scenario, summary in zip((line_a, star, line_b), summaries):
        (alone,) = run_scenarios([scenario])
        assert [pickle.dumps(r) for r in alone.results] \
            == [pickle.dumps(r) for r in summary.results]


def test_default_topology_fills_the_gap():
    topo = build_topology(LINE)
    bare = dataclasses.replace(BASE, topology=None)
    (summary,) = run_scenarios([bare], topo=topo)
    assert summary.n_runs == 1


def test_no_topology_anywhere_is_an_error():
    bare = dataclasses.replace(BASE, topology=None)
    with pytest.raises(ValueError, match="names no topology"):
        run_scenarios([bare])


def test_store_keys_shared_with_experiment_spec_path():
    # A scenario file and the equivalent ExperimentSpec must hit the
    # same store entries: the fingerprint hashes data, not call shape.
    store = ResultStore()
    topo = build_topology(LINE)
    spec = ExperimentSpec(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=5)
    run_experiments(topo, [spec], store=store)
    assert store.stats.misses == 1
    run_scenarios([BASE], store=store)
    assert store.stats.hits == 1 and store.stats.misses == 1


def test_executor_path_is_bit_identical():
    grid = ScenarioGrid(BASE, axes={"protocol": ("opt", "dbao")})
    serial = run_scenarios(grid.scenarios())
    executed = run_scenarios(grid.scenarios(), executor=SerialExecutor())
    for a, b in zip(serial, executed):
        assert [pickle.dumps(r) for r in a.results] \
            == [pickle.dumps(r) for r in b.results]
