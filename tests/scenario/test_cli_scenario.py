"""Tests for the scenario-file CLI: run-scenario, scenario validate/show."""

import json

import pytest

from repro.cli import build_parser, main
from repro.scenario import Scenario, ScenarioGrid, TopologySpec


@pytest.fixture
def grid_file(tmp_path):
    grid = ScenarioGrid(
        Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=7,
                 topology=TopologySpec(kind="line",
                                       params={"n_sensors": 8, "prr": 0.9})),
        axes={"protocol": ("opt", "dbao")},
        name="cli-demo",
    )
    path = tmp_path / "demo.json"
    path.write_text(grid.to_json())
    return str(path)


@pytest.fixture
def typo_file(tmp_path):
    path = tmp_path / "typo.json"
    path.write_text(json.dumps({
        "schema": 1,
        "scenario": {"protocol": "dbao", "duty_ration": 0.1, "n_packets": 2},
    }))
    return str(path)


class TestParser:
    def test_run_scenario_takes_exec_flags(self):
        args = build_parser().parse_args(
            ["run-scenario", "f.json", "--jobs", "2",
             "--cache-dir", "c", "--summary", "s.json"]
        )
        assert (args.file, args.jobs, args.cache_dir, args.summary) \
            == ("f.json", 2, "c", "s.json")

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])


class TestValidate:
    def test_valid_file_reports_cells(self, grid_file, capsys):
        assert main(["scenario", "validate", grid_file]) == 0
        out = capsys.readouterr().out
        assert "OK: cli-demo" in out and "2 cell(s)" in out

    def test_typo_reports_closest_field(self, typo_file, capsys):
        assert main(["scenario", "validate", typo_file]) == 2
        err = capsys.readouterr().err
        assert "INVALID" in err and "duty_ratio" in err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["scenario", "validate", str(tmp_path / "nope.json")]) == 2


class TestShow:
    def test_show_prints_normalized_grid(self, grid_file, capsys):
        assert main(["scenario", "show", grid_file]) == 0
        out = capsys.readouterr().out
        shown = json.loads(out[:out.index("OK:")])
        assert shown["name"] == "cli-demo"
        # Defaults are materialized in the normalized form.
        assert shown["scenario"]["link_model"] == "static"


class TestRunScenario:
    def test_runs_and_prints_every_cell(self, grid_file, capsys):
        assert main(["run-scenario", grid_file]) == 0
        out = capsys.readouterr().out
        assert "cli-demo: 2 cell(s)" in out
        assert out.count("protocol=") == 2

    def test_summary_digest_is_deterministic(self, grid_file, tmp_path,
                                             capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run-scenario", grid_file, "--summary", str(a)]) == 0
        assert main(["run-scenario", grid_file, "--summary", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        digest = json.loads(a.read_text())
        assert digest["n_cells"] == 2
        assert [c["axes"]["protocol"] for c in digest["cells"]] \
            == ["opt", "dbao"]
        assert all(len(c["fingerprint"]) == 64 for c in digest["cells"])

    def test_second_run_with_cache_dir_hits(self, grid_file, tmp_path,
                                            capsys):
        cache = str(tmp_path / "cache")
        assert main(["run-scenario", grid_file, "--cache-dir", cache]) == 0
        assert "0 hit(s)" in capsys.readouterr().err
        assert main(["run-scenario", grid_file, "--cache-dir", cache]) == 0
        assert "0 miss(es)" in capsys.readouterr().err

    def test_invalid_file_exits_2(self, typo_file, capsys):
        assert main(["run-scenario", typo_file]) == 2
        assert "duty_ratio" in capsys.readouterr().err
