"""Sharding a ScenarioGrid: the determinism contract and the stamp."""

import json

import pytest

from repro.scenario import Scenario, ScenarioError, ScenarioGrid, TopologySpec

BASE = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=7)


def grid(**kwargs):
    defaults = dict(
        base=BASE,
        axes={"protocol": ("opt", "dbao", "of"),
              "duty_ratio": (0.05, 0.1, 0.2)},
        name="shard-demo",
    )
    defaults.update(kwargs)
    return ScenarioGrid(**defaults)


class TestPartition:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 9, 10, 17])
    def test_shards_partition_the_grid(self, k):
        g = grid()
        shards = g.shards(k)
        seen = [idx for s in shards for idx in s.cell_indices()]
        assert sorted(seen) == list(range(len(g)))
        # Balanced: sizes differ by at most one.
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_cells_keep_expansion_order(self):
        g = grid()
        full = g.scenarios()
        for s in g.shards(3):
            idx = s.cell_indices()
            assert list(idx) == sorted(idx)
            assert s.scenarios() == [full[i] for i in idx]
            assert s.combos() == [g.combos()[i] for i in idx]

    def test_partition_is_a_function_of_content_not_axis_order(self):
        # Same cells declared through reordered axis values: every cell
        # fingerprint is unchanged, so the *set* of cells per shard is too.
        a = grid()
        b = grid(axes={"protocol": ("of", "dbao", "opt"),
                       "duty_ratio": (0.2, 0.1, 0.05)})
        fps_a = [{s.fingerprint() for s in sh.scenarios()}
                 for sh in a.shards(4)]
        fps_b = [{s.fingerprint() for s in sh.scenarios()}
                 for sh in b.shards(4)]
        assert fps_a == fps_b

    def test_more_shards_than_cells_is_legal_and_empty(self):
        g = grid(axes={"protocol": ("opt", "dbao")})
        shards = g.shards(5)
        assert sum(len(s) for s in shards) == 2
        assert any(len(s) == 0 for s in shards)

    def test_unsharded_grid_is_its_own_single_shard(self):
        g = grid()
        assert g.cell_indices() == tuple(range(len(g)))
        only = g.shard(0, 1)
        assert only.scenarios() == g.scenarios()


class TestValidation:
    def test_rejects_out_of_range_index(self):
        with pytest.raises(ScenarioError, match="0-based"):
            grid().shard(2, 2)
        with pytest.raises(ScenarioError, match="0-based"):
            grid().shard(-1, 2)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ScenarioError, match="count"):
            grid().shard(0, 0)

    def test_refuses_resharding_a_shard(self):
        s = grid().shard(0, 2)
        with pytest.raises(ScenarioError, match="already shard 0/2"):
            s.shard(0, 2)


class TestFingerprints:
    def test_grid_fingerprint_is_invariant_under_sharding(self):
        g = grid()
        assert g.grid_fingerprint() == g.fingerprint()
        for s in g.shards(3):
            assert s.grid_fingerprint() == g.grid_fingerprint()

    def test_shard_fingerprints_are_distinct(self):
        fps = {s.fingerprint() for s in grid().shards(3)}
        assert len(fps) == 3
        assert grid().fingerprint() not in fps


class TestSerialization:
    def test_shard_round_trips_through_json(self):
        s = grid().shard(1, 3)
        back = ScenarioGrid.from_dict(json.loads(s.to_json()))
        assert back.sharding == (1, 3)
        assert back.scenarios() == s.scenarios()
        assert back.grid_fingerprint() == s.grid_fingerprint()

    def test_shard_stamp_carries_parent_fingerprint(self):
        g = grid()
        data = g.shard(0, 2).to_dict()
        assert data["shard"] == {"index": 0, "count": 2,
                                 "grid": g.grid_fingerprint()}

    def test_unsharded_grid_has_no_shard_field(self):
        assert "shard" not in grid().to_dict()

    def test_tampered_stamp_is_rejected(self):
        data = grid().shard(0, 2).to_dict()
        data["shard"]["grid"] = "0" * 64
        with pytest.raises(ScenarioError, match="stamped for grid"):
            ScenarioGrid.from_dict(data)

    def test_edited_axes_invalidate_the_stamp(self):
        # A shard file whose grid definition was edited after sharding
        # no longer expands to the stamped grid -> load must refuse.
        data = grid().shard(0, 2).to_dict()
        data["axes"]["duty_ratio"] = [0.05, 0.1]
        with pytest.raises(ScenarioError, match="stamped for grid"):
            ScenarioGrid.from_dict(data)

    def test_shard_needs_index_and_count(self):
        data = grid().to_dict()
        data["shard"] = {"index": 0}
        with pytest.raises(ScenarioError, match="'index' and 'count'"):
            ScenarioGrid.from_dict(data)

    def test_unknown_shard_field_is_rejected(self):
        data = grid().shard(0, 2).to_dict()
        data["shard"]["extra"] = 1
        with pytest.raises(ScenarioError, match="extra"):
            ScenarioGrid.from_dict(data)


class TestRegistry:
    def test_scenario_grid_accepts_shard_kwarg(self):
        from repro.experiments.registry import scenario_grid

        full = scenario_grid("fig9", scale="smoke")
        s0 = scenario_grid("fig9", scale="smoke", shard=(0, 2))
        s1 = scenario_grid("fig9", scale="smoke", shard=(1, 2))
        assert s0.sharding == (0, 2)
        assert s0.grid_fingerprint() == full.fingerprint()
        got = sorted(s.fingerprint()
                     for s in s0.scenarios() + s1.scenarios())
        assert got == sorted(s.fingerprint() for s in full.scenarios())

    def test_topology_axis_grids_shard_cleanly(self):
        # Axis values that are TopologySpecs fingerprint deterministically.
        g = ScenarioGrid(
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=7),
            axes={"topology": (
                TopologySpec(kind="line", params={"n_sensors": 6}),
                TopologySpec(kind="line", params={"n_sensors": 8}),
            )},
            name="topo-axis",
        )
        shards = g.shards(2)
        assert sorted(len(s) for s in shards) == [1, 1]
        back = ScenarioGrid.from_dict(json.loads(shards[0].to_json()))
        assert back.scenarios() == shards[0].scenarios()
