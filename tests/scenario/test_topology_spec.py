"""Tests for declarative topology sources and the bounded build cache."""

import numpy as np
import pytest

from repro.net.generators import line_topology
from repro.net.topology import homogenized
from repro.scenario import (
    ScenarioError,
    TopologySpec,
    build_topology,
    topology_cache_info,
)


class TestValidation:
    def test_unknown_kind_suggests(self):
        with pytest.raises(ScenarioError, match="greenorbs"):
            TopologySpec(kind="greenorb")

    def test_unknown_param_suggests(self):
        with pytest.raises(ScenarioError, match="n_sensors"):
            TopologySpec(kind="line", params={"n_sensor": 5})

    def test_params_checked_per_kind(self):
        TopologySpec(kind="grid", params={"rows": 3, "cols": 3})
        with pytest.raises(ScenarioError, match="topology parameter"):
            TopologySpec(kind="grid", params={"n_sensors": 9})

    def test_unknown_transform_rejected(self):
        with pytest.raises(ScenarioError, match="homogenize"):
            TopologySpec(transform="homogenise")

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ScenarioError, match="topology field"):
            TopologySpec.from_dict({"kind": "line", "sede": 1})


class TestBuild:
    def test_round_trip_is_identity(self):
        spec = TopologySpec(kind="star", seed=3,
                            params={"n_sensors": 6, "prr": 0.7})
        assert TopologySpec.from_dict(spec.to_dict()) == spec

    def test_line_build_matches_generator(self):
        spec = TopologySpec(kind="line", params={"n_sensors": 6, "prr": 0.8})
        direct = line_topology(6, prr=0.8)
        assert spec.build().fingerprint() == direct.fingerprint()

    def test_greenorbs_build_matches_get_trace(self):
        from repro.experiments._common import get_trace, trace_spec

        assert trace_spec("smoke").build().fingerprint() \
            == get_trace("smoke").fingerprint()

    def test_seed_changes_random_builds(self):
        a = TopologySpec(kind="random_geometric", seed=1,
                         params={"n_nodes": 20})
        b = TopologySpec(kind="random_geometric", seed=2,
                         params={"n_nodes": 20})
        assert a.build().fingerprint() != b.build().fingerprint()

    def test_homogenize_transform_flattens_prr(self):
        spec = TopologySpec(kind="line", params={"n_sensors": 6, "prr": 0.8})
        topo = spec.build()
        twin = TopologySpec(kind="line", params={"n_sensors": 6, "prr": 0.8},
                            transform="homogenize").build()
        assert twin.fingerprint() == homogenized(topo).fingerprint()
        assert twin.fingerprint() != topo.fingerprint()
        linked = twin.prr[twin.adjacency]
        assert np.allclose(linked, linked[0])


class TestCache:
    def test_equal_specs_share_one_object(self):
        spec = TopologySpec(kind="line", params={"n_sensors": 4})
        assert build_topology(spec) is build_topology(
            TopologySpec(kind="line", params={"n_sensors": 4})
        )

    def test_cache_is_bounded(self):
        for n in range(3, 20):
            build_topology(TopologySpec(kind="line",
                                        params={"n_sensors": n}))
        entries, maxsize = topology_cache_info()
        assert entries <= maxsize

    def test_get_trace_identity_preserved(self):
        from repro.experiments._common import get_trace

        assert get_trace("smoke") is get_trace("smoke")


class TestGeometricSpec:
    """The PHY topology source through the declarative spec layer."""

    def test_build_matches_generator(self):
        from repro.net.generators import geometric_topology

        spec = TopologySpec(kind="geometric", seed=11,
                            params={"n_nodes": 25, "area_m": 150.0})
        direct = geometric_topology(
            25, 150.0, rng=np.random.default_rng(11))
        assert spec.build().fingerprint() == direct.fingerprint()

    def test_radio_params_split_from_placement_params(self):
        # RadioParameters fields ride in the same params dict and reach
        # the PHY model; a hotter radio closes more links.
        base = {"n_nodes": 25, "area_m": 200.0, "shadowing_sigma_db": 0.0}
        weak = TopologySpec(kind="geometric", seed=4,
                            params={**base, "tx_power_dbm": -10.0}).build()
        hot = TopologySpec(kind="geometric", seed=4,
                           params={**base, "tx_power_dbm": 5.0}).build()
        assert (hot.prr > 0).sum() > (weak.prr > 0).sum()

    def test_unknown_param_suggests(self):
        with pytest.raises(ScenarioError, match="path_loss_exponent"):
            TopologySpec(kind="geometric",
                         params={"path_loss_exponen": 3.0})

    def test_grid_placement_via_spec(self):
        topo = TopologySpec(kind="geometric", seed=0,
                            params={"n_nodes": 16, "area_m": 90.0,
                                    "placement": "grid"}).build()
        assert topo.n_nodes == 16
        assert topo.reachable_from_source().all()

    def test_seed_changes_uniform_builds(self):
        a = TopologySpec(kind="geometric", seed=1,
                         params={"n_nodes": 20, "area_m": 150.0})
        b = TopologySpec(kind="geometric", seed=2,
                         params={"n_nodes": 20, "area_m": 150.0})
        assert a.build().fingerprint() != b.build().fingerprint()
