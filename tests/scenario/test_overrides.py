"""Per-scenario SimConfig overrides: fingerprinted end to end, without
perturbing trajectories when the override is behavior-preserving."""

import pickle

import dataclasses

from repro.exec import ResultStore, result_key
from repro.scenario import Scenario, TopologySpec, build_topology
from repro.sim.runner import run_scenarios

BASE = Scenario(
    protocol="dbao", duty_ratio=0.1, n_packets=3, seed=11, n_replications=2,
    topology=TopologySpec(kind="line", params={"n_sensors": 10, "prr": 0.9}),
)
TOGGLED = dataclasses.replace(BASE, sim={"fast_forward": False})


def test_toggled_override_changes_the_store_key():
    topo = build_topology(BASE.topology)
    assert BASE.fingerprint() != TOGGLED.fingerprint()
    assert result_key(topo, BASE) != result_key(topo, TOGGLED)


def test_toggled_override_is_a_distinct_cache_entry():
    store = ResultStore()
    run_scenarios([BASE], store=store)
    run_scenarios([TOGGLED], store=store)
    assert store.stats.misses == 2 and store.stats.hits == 0
    # Re-running either answers from its own entry.
    run_scenarios([TOGGLED, BASE], store=store)
    assert store.stats.hits == 2


def test_fast_forward_override_preserves_golden_trajectories():
    # fast_forward skips provably-idle slots; switching it off must
    # reproduce the exact same floods, bit for bit.
    (with_ff,) = run_scenarios([BASE])
    (without_ff,) = run_scenarios([TOGGLED])
    assert [pickle.dumps(r) for r in with_ff.results] \
        == [pickle.dumps(r) for r in without_ff.results]


def test_radio_override_reaches_the_engine():
    # Disabling collisions for DBAO (OPT's oracle channel) must change
    # behavior on a contended topology — the override is not cosmetic.
    tree = Scenario(
        protocol="dbao", duty_ratio=0.2, n_packets=5, seed=11,
        topology=TopologySpec(kind="binary_tree", params={"depth": 4}),
        sim={"radio": {"collisions": False}},
    )
    contended = dataclasses.replace(tree, sim={})
    (oracle,), (real,) = run_scenarios([tree]), run_scenarios([contended])
    assert all(r.metrics.collisions == 0 for r in oracle.results)
    assert sum(r.metrics.collisions for r in real.results) > 0
