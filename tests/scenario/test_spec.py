"""Tests for the serializable Scenario spec: round-trips, fingerprints,
validation with helpful errors."""

import json

import numpy as np
import pytest

from repro.scenario import (
    Scenario,
    ScenarioError,
    TopologySpec,
    as_scenario,
    default_sim_config,
)
from repro.sim.engine import SimConfig
from repro.sim.runner import ExperimentSpec


def rich_scenario() -> Scenario:
    return Scenario(
        protocol="dbao",
        duty_ratio=0.05,
        n_packets=7,
        seed=42,
        n_replications=3,
        coverage_target=0.95,
        generation_interval=2,
        protocol_kwargs={"opp_quantile": 0.8},
        wake_slots=2,
        schedule_jitter=0.1,
        link_model="gilbert_elliott",
        link_kwargs={"p_good_to_bad": 0.02, "bad_factor": 0.3},
        mac="csma_802154",
        mac_kwargs={"max_frame_retries": 2},
        sim={"fast_forward": False, "radio": {"collisions": False}},
        measure_transmission_delay=True,
        topology=TopologySpec(kind="line", params={"n_sensors": 9, "prr": 0.8}),
    )


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        s = rich_scenario()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_round_trip_is_identity(self):
        s = rich_scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_minimal_dict_gets_defaults(self):
        s = Scenario.from_dict(
            {"protocol": "of", "duty_ratio": 0.1, "n_packets": 2}
        )
        assert s == Scenario(protocol="of", duty_ratio=0.1, n_packets=2)
        assert s.n_replications == 1 and s.link_model == "static"

    def test_to_dict_materializes_every_field(self):
        data = rich_scenario().to_dict()
        assert set(data) == set(Scenario.__dataclass_fields__)

    def test_to_dict_copies_mutable_fields(self):
        s = rich_scenario()
        s.to_dict()["sim"]["max_slots"] = 1  # mutating the dict ...
        assert "max_slots" not in s.sim  # ... never leaks into the spec


class TestFingerprint:
    def test_stable_across_field_ordering(self):
        s = rich_scenario()
        shuffled = dict(reversed(list(s.to_dict().items())))
        assert Scenario.from_dict(shuffled).fingerprint() == s.fingerprint()

    def test_hashes_data_not_construction_path(self):
        built = Scenario(protocol="opt", duty_ratio=0.2, n_packets=3, seed=1)
        loaded = Scenario.from_json(
            json.dumps({"protocol": "opt", "duty_ratio": 0.2,
                        "n_packets": 3, "seed": 1})
        )
        assert built.fingerprint() == loaded.fingerprint()

    def test_excludes_topology(self):
        a = rich_scenario()
        b = Scenario.from_dict({**a.to_dict(), "topology": None})
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_every_other_field(self):
        base = rich_scenario()
        variants = {
            "protocol": "of", "duty_ratio": 0.2, "n_packets": 8, "seed": 43,
            "n_replications": 4, "coverage_target": 0.9,
            "generation_interval": 3, "protocol_kwargs": {},
            "wake_slots": 3, "schedule_jitter": 0.2, "link_model": "static",
            "sim": {}, "measure_transmission_delay": False,
        }
        for fname, value in variants.items():
            data = {**base.to_dict(), fname: value}
            if fname == "link_model":  # static takes no kwargs
                data["link_kwargs"] = {}
            changed = Scenario.from_dict(data)
            assert changed.fingerprint() != base.fingerprint(), fname

    def test_numpy_scalars_serialize(self):
        s = Scenario(protocol="dbao", duty_ratio=np.float64(0.1),
                     n_packets=2, seed=np.int64(7))
        plain = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2, seed=7)
        assert s.fingerprint() == plain.fingerprint()
        assert Scenario.from_json(s.to_json()).fingerprint() == s.fingerprint()

    def test_unserializable_field_is_a_spec_bug(self):
        s = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     protocol_kwargs={"rng": np.random.default_rng(0)})
        with pytest.raises(TypeError, match="JSON-representable"):
            s.fingerprint()


class TestValidation:
    def test_misspelled_field_suggests_correction(self):
        with pytest.raises(ScenarioError, match="duty_ratio"):
            Scenario.from_dict(
                {"protocol": "dbao", "duty_ration": 0.1, "n_packets": 2}
            )

    def test_unknown_field_lists_valid_names(self):
        with pytest.raises(ScenarioError, match="valid:"):
            Scenario.from_dict({"protocol": "dbao", "duty_ratio": 0.1,
                                "n_packets": 2, "zzz": 1})

    def test_missing_required_fields_named(self):
        with pytest.raises(ScenarioError, match="n_packets"):
            Scenario.from_dict({"protocol": "dbao", "duty_ratio": 0.1})

    def test_misspelled_sim_override_suggests(self):
        with pytest.raises(ScenarioError, match="fast_forward"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     sim={"fast_foward": False})

    def test_unknown_radio_override_rejected(self):
        with pytest.raises(ScenarioError, match="radio override"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     sim={"radio": {"lasers": True}})

    def test_unknown_link_model_rejected(self):
        with pytest.raises(ScenarioError, match="gilbert_elliott"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     link_model="gilbert")

    def test_unknown_link_kwarg_rejected(self):
        with pytest.raises(ScenarioError, match="link-model parameter"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     link_model="gilbert_elliott", link_kwargs={"p_bad": 0.1})

    @pytest.mark.parametrize("bad", [
        {"duty_ratio": 0.0}, {"duty_ratio": 1.5}, {"n_packets": 0},
        {"n_replications": 0}, {"coverage_target": 0.0},
        {"generation_interval": -1}, {"wake_slots": 0},
        {"schedule_jitter": -0.1}, {"schedule_jitter": 1.1},
    ])
    def test_out_of_range_values_rejected(self, bad):
        kwargs = {"protocol": "dbao", "duty_ratio": 0.1, "n_packets": 2}
        kwargs.update(bad)
        with pytest.raises(ScenarioError):
            Scenario(**kwargs)

    def test_non_mapping_rejected(self):
        with pytest.raises(ScenarioError, match="object"):
            Scenario.from_dict(["not", "a", "scenario"])


class TestMacValidation:
    def test_unknown_mac_kind_suggests_closest(self):
        with pytest.raises(ScenarioError, match="csma_802154"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac="csma_80215")

    def test_unknown_mac_kwarg_suggests_closest(self):
        with pytest.raises(ScenarioError,
                           match="did you mean 'max_frame_retries'"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac="csma_802154",
                     mac_kwargs={"max_frame_retrys": 2})

    def test_mac_kwargs_for_ideal_rejected(self):
        # The ideal link takes no parameters; passing any is a spec bug.
        with pytest.raises(ScenarioError, match="mac parameter"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac_kwargs={"mac_min_be": 2})

    def test_bad_mac_parameter_values_rejected_eagerly(self):
        # Construction-time validation, not first-use: the constructor's
        # ValueError surfaces as a ScenarioError naming the MAC.
        with pytest.raises(ScenarioError, match="csma_802154"):
            Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac="csma_802154",
                     mac_kwargs={"mac_min_be": 6, "mac_max_be": 5})

    def test_make_link_model_honours_kwargs(self):
        s = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac="csma_802154",
                     mac_kwargs={"max_frame_retries": 1})
        link = s.make_link_model()
        assert link.kind == "csma_802154"
        assert link.max_frame_retries == 1

    def test_default_mac_fingerprint_unchanged(self):
        # Back-compat: the implicit ideal MAC must not perturb
        # fingerprints (pinned store keys and expected.json digests
        # predate the mac field).
        s = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2)
        data = s.to_dict()
        data.pop("mac")
        data.pop("mac_kwargs")
        legacy = Scenario.from_dict(data)
        assert legacy.fingerprint() == s.fingerprint()

    def test_mac_choice_changes_fingerprint(self):
        a = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2)
        b = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac="csma_802154")
        c = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=2,
                     mac="csma_802154",
                     mac_kwargs={"max_frame_retries": 1})
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


class TestDerived:
    def test_period_matches_schedule_helper(self):
        from repro.net.schedule import duty_ratio_to_period

        s = Scenario(protocol="dbao", duty_ratio=0.05, n_packets=1)
        assert s.period == duty_ratio_to_period(0.05)

    def test_multislot_period_scales_with_budget(self):
        s = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=1,
                     wake_slots=2)
        assert s.period == 20

    def test_sim_config_defaults_by_protocol(self):
        opt = Scenario(protocol="opt", duty_ratio=0.1, n_packets=1)
        assert not opt.sim_config().radio.collisions
        dbao = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=1)
        assert dbao.sim_config() == default_sim_config("dbao")

    def test_sim_overrides_apply(self):
        s = Scenario(protocol="dbao", duty_ratio=0.1, n_packets=1,
                     coverage_target=0.9,
                     sim={"fast_forward": False,
                          "radio": {"overhearing": True}})
        config = s.sim_config()
        assert config.fast_forward is False
        assert config.radio.overhearing is True
        assert config.coverage_target == 0.9


class TestAsScenario:
    def test_scenario_passes_through(self):
        s = rich_scenario()
        assert as_scenario(s) is s

    def test_mapping_normalizes(self):
        s = as_scenario({"protocol": "of", "duty_ratio": 0.1, "n_packets": 2})
        assert isinstance(s, Scenario) and s.protocol == "of"

    def test_experiment_spec_default_config_diffs_to_empty(self):
        spec = ExperimentSpec(protocol="opt", duty_ratio=0.1, n_packets=2,
                              seed=5, n_replications=2)
        s = as_scenario(spec)
        assert s.sim == {}  # OPT's oracle radio is the *default*, not a diff
        assert (s.protocol, s.duty_ratio, s.n_packets, s.seed,
                s.n_replications) == ("opt", 0.1, 2, 5, 2)

    def test_experiment_spec_custom_config_diffs_to_overrides(self):
        spec = ExperimentSpec(
            protocol="dbao", duty_ratio=0.1, n_packets=2,
            sim_config=SimConfig(fast_forward=False),
        )
        assert as_scenario(spec).sim == {"fast_forward": False}

    def test_equivalent_specs_share_a_fingerprint(self):
        # The explicitly-spelled default config and no config at all are
        # behaviorally identical, so they must hit the same cache key.
        plain = ExperimentSpec(protocol="dbao", duty_ratio=0.1, n_packets=2)
        spelled = ExperimentSpec(protocol="dbao", duty_ratio=0.1, n_packets=2,
                                 sim_config=default_sim_config("dbao"))
        assert as_scenario(plain).fingerprint() \
            == as_scenario(spelled).fingerprint()

    def test_rejects_non_spec_objects(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            as_scenario(42)
