"""Scenario files and module-defined grids are the same workloads.

The committed ``examples/*.json`` files must stay equal — cell for
cell, fingerprint for fingerprint — to the registry grids they mirror,
and running one through ``repro run-scenario`` must hit the exact store
entries ``repro run`` filled (and vice versa): the declarative layer is
a serialization of the experiments, not a parallel implementation.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.registry import scenario_grid, scenario_grid_ids
from repro.scenario import load_scenario_file

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("eid", ["fig9", "hetero"])
def test_example_file_equals_registry_grid(eid):
    from_file = load_scenario_file(EXAMPLES / f"{eid}.json")
    from_registry = scenario_grid(eid, scale="smoke")
    assert from_file == from_registry
    assert from_file.fingerprint() == from_registry.fingerprint()


def test_every_registry_grid_serializes_and_round_trips():
    from repro.scenario import ScenarioGrid

    for eid in scenario_grid_ids():
        grid = scenario_grid(eid, scale="smoke")
        again = ScenarioGrid.from_dict(json.loads(grid.to_json()))
        assert again.fingerprint() == grid.fingerprint(), eid


def test_smoke_expectation_matches_committed_digest(tmp_path, capsys):
    # The CI smoke contract, runnable locally: simulation is
    # bit-identical across machines, so the committed digest is exact.
    out = tmp_path / "summary.json"
    assert main(["run-scenario", str(EXAMPLES / "scenario_smoke.json"),
                 "--summary", str(out)]) == 0
    capsys.readouterr()
    expected = (EXAMPLES / "scenario_smoke.expected.json").read_text()
    assert json.loads(out.read_text()) == json.loads(expected)


def test_fig9_scenario_file_shares_store_keys_with_run(tmp_path, capsys):
    # ``repro run fig9`` fills the cache; the scenario file replays it
    # with zero misses — same fingerprints end to end — and vice versa.
    cache = str(tmp_path / "cache")
    assert main(["run", "fig9", "--scale", "smoke", "--cache-dir", cache,
                 "--no-sparklines"]) == 0
    err = capsys.readouterr().err
    assert "0 hit(s)" in err and "3 miss(es)" in err
    assert main(["run-scenario", str(EXAMPLES / "fig9.json"),
                 "--cache-dir", cache]) == 0
    assert "3 hit(s), 0 miss(es)" in capsys.readouterr().err
    assert main(["run", "fig9", "--scale", "smoke", "--cache-dir", cache,
                 "--no-sparklines"]) == 0
    assert "0 miss(es)" in capsys.readouterr().err
