"""Tests for the experiment harness (smoke scale) and its shape claims."""

import numpy as np
import pytest

from repro.analysis.report import render_result
from repro.core.fdl import knee_point
from repro.experiments import experiment_ids, run_experiment_by_id
from repro.experiments._common import SCALES, get_trace, resolve_scale


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        ids = experiment_ids()
        for required in ("fig3", "fig5", "fig6", "fig7", "fig9", "fig10",
                         "fig11", "table1", "lemma2", "gain"):
            assert required in ids

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment_by_id("fig99")

    def test_scales_defined(self):
        for name in ("full", "bench", "smoke"):
            assert name in SCALES
        with pytest.raises(KeyError):
            resolve_scale("giant")


class TestTraceCache:
    def test_cached_identity(self):
        a = get_trace("smoke")
        b = get_trace("smoke")
        assert a is b

    def test_smoke_scale_size(self):
        topo = get_trace("smoke")
        assert topo.n_sensors == SCALES["smoke"].n_sensors


class TestTheoryExperiments:
    def test_fig3_achieves_lemma3(self):
        r = run_experiment_by_id("fig3", scale="smoke")
        assert r.metadata["achieves_lemma3"]
        assert r.metadata["compact_slots"] == r.metadata["lemma3_limit"]

    def test_fig5_knee_and_ordering(self):
        r = run_experiment_by_id("fig5", scale="smoke")
        # Larger N lies strictly above smaller N (panel A).
        s256 = r.get_series("panelA: N=256, T=5")
        s4096 = r.get_series("panelA: N=4096, T=5")
        assert np.all(s4096.y > s256.y)
        # Knee: marginal delay halves at M = m.
        m = knee_point(1024)
        s1024 = r.get_series("panelA: N=1024, T=5")
        slopes = np.diff(s1024.y)
        assert slopes[m - 3] == pytest.approx(2 * slopes[m + 2])
        # Panel B: lower duty lies above higher duty.
        b10 = r.get_series("panelB: N=1024, duty=10%")
        b100 = r.get_series("panelB: N=1024, duty=100%")
        assert np.all(b10.y > b100.y)

    def test_fig6_bounds_bracket(self):
        r = run_experiment_by_id("fig6", scale="smoke")
        for n in (256, 1024):
            lo = r.get_series(f"N={n}, lower bound")
            hi = r.get_series(f"N={n}, upper bound")
            assert np.all(lo.y <= hi.y)

    def test_fig7_shapes(self):
        r = run_experiment_by_id("fig7", scale="smoke")
        curves = [r.get_series(lbl) for lbl in r.labels()]
        # Monotone decreasing in duty cycle.
        for c in curves:
            assert c.is_monotone_decreasing()
        # Worst link (k=2) dominates best (k=1.25) at every duty.
        k2 = r.get_series("k=2 (link quality 50%)")
        k125 = r.get_series("k=1.25 (link quality 80%)")
        assert np.all(k2.y > k125.y)
        # The spread widens as duty shrinks.
        spread = k2.y - k125.y
        assert spread[0] > spread[-1]

    def test_table1_patterns(self):
        r = run_experiment_by_id("table1", scale="smoke")
        assert r.metadata["algorithm1_achieves_limit"]
        small = r.tables[0]
        m = r.metadata["m"]
        assert small.column("W_p")[0] == m
        large = r.tables[1]
        assert large.column("W_p")[-1] == r.metadata["saturation"]

    def test_lemma2_agreement(self):
        r = run_experiment_by_id("lemma2", scale="smoke")
        theory = r.get_series("E[FWL] theory (ceil form)")
        measured = r.get_series("E[FWL] measured")
        assert np.all(np.abs(theory.y - measured.y) <= 1.5)


class TestTraceExperiments:
    def test_fig9_blocking_and_decomposition(self):
        r = run_experiment_by_id("fig9", scale="smoke")
        for proto in ("opt", "dbao", "of"):
            total = r.get_series(f"{proto}: total delay")
            trans = r.get_series(f"{proto}: transmission delay")
            assert total.x.size == trans.x.size
            assert np.all(total.y > 0)

    def test_fig10_shapes(self):
        r = run_experiment_by_id("fig10", scale="smoke")
        bound = r.get_series("predicted lower bound")
        opt = r.get_series("opt: avg delay")
        # Delay decreases with duty cycle for every protocol.
        for proto in ("opt", "dbao", "of"):
            assert r.get_series(f"{proto}: avg delay").is_monotone_decreasing()
        # The analytic bound stays below the oracle.
        assert np.all(bound.y <= opt.y * 1.05)

    def test_fig11_failures_positive(self):
        r = run_experiment_by_id("fig11", scale="smoke")
        for proto in ("opt", "dbao", "of"):
            assert np.all(r.get_series(f"{proto}: failures").y >= 0)

    def test_gain_has_interior_maximum(self):
        r = run_experiment_by_id("gain", scale="smoke")
        gains = r.get_series("networking gain").y
        best = int(np.argmax(gains))
        assert 0 < best < gains.size - 1
        assert 0.01 < r.metadata["optimal_duty"] <= 0.5

    def test_ablation_overhearing_saves_transmissions(self):
        r = run_experiment_by_id("abl-overhearing", scale="smoke")
        tx = r.get_series("tx attempts").y
        assert tx[0] < tx[1]  # on < off

    def test_every_experiment_renders(self):
        # Rendering must never crash for any registered experiment.
        for eid in ("fig3", "fig5", "fig6", "fig7", "table1", "lemma2"):
            out = render_result(run_experiment_by_id(eid, scale="smoke"))
            assert eid in out
