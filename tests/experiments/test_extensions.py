"""Tests for the extension experiments (hetero, bursty, data overhearing)."""

import numpy as np
import pytest

from repro.experiments import experiment_ids, run_experiment_by_id
from repro.experiments.hetero import homogenize


class TestRegistryExtensions:
    def test_extension_ids_present(self):
        ids = experiment_ids()
        for eid in ("skew", "hetero", "abl-bursty", "abl-data-overhearing"):
            assert eid in ids


class TestHomogenize:
    def test_same_adjacency_uniform_prr(self, small_rgg):
        homog = homogenize(small_rgg)
        assert np.array_equal(homog.adjacency, small_rgg.adjacency)
        prrs = homog.prr[homog.adjacency]
        assert np.allclose(prrs, prrs[0])
        assert prrs[0] == pytest.approx(small_rgg.mean_prr())

    def test_positions_preserved(self, small_rgg):
        homog = homogenize(small_rgg)
        assert np.array_equal(homog.positions, small_rgg.positions)


class TestHeteroExperiment:
    def test_shapes(self):
        r = run_experiment_by_id("hetero", scale="smoke")
        het = r.get_series("heterogeneous trace")
        hom = r.get_series("homogenized twin")
        bound = r.get_series("analytic lower bound")
        # Everything above the analytic bound.
        assert np.all(het.y >= bound.y * 0.75)
        assert np.all(hom.y >= bound.y * 0.75)
        # The k-class table shows the Jensen gap E[1/q] > 1/E[q].
        ks = r.tables[0].column("k")
        assert ks[0] > ks[1]


class TestBurstyExperiment:
    def test_bursts_hurt_at_matched_mean(self):
        r = run_experiment_by_id("abl-bursty", scale="smoke")
        delays = r.get_series("avg delay").y
        # Static mean-matched (index 0) <= bursty (index 1), with slack
        # for small-sample noise.
        assert delays[1] >= delays[0] * 0.85
        assert 0.0 < r.metadata["long_run_prr_scale"] <= 1.0


class TestDataOverhearingExperiment:
    def test_overhearing_not_slower(self):
        r = run_experiment_by_id("abl-data-overhearing", scale="smoke")
        delays = r.get_series("avg delay").y
        assert delays[1] <= delays[0] * 1.15
