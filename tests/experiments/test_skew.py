"""Tests for the clock-skew sensitivity machinery."""

import numpy as np
import pytest

from repro.experiments import run_experiment_by_id
from repro.experiments.skew import JitteredSchedules
from repro.net.generators import line_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols import make_protocol
from repro.sim.engine import SimConfig, run_flood


@pytest.fixture
def advertised(rng):
    return ScheduleTable.random(5, 10, rng)


class TestJitteredSchedules:
    def test_zero_jitter_matches_advertised(self, advertised):
        truth = JitteredSchedules(advertised, 0.0, seed=1)
        for t in range(30):
            assert np.array_equal(truth.awake_at(t), advertised.awake_at(t))

    def test_deterministic_in_seed(self, advertised):
        a = JitteredSchedules(advertised, 0.5, seed=5)
        b = JitteredSchedules(advertised, 0.5, seed=5)
        for t in range(40):
            assert np.array_equal(a.awake_at(t), b.awake_at(t))

    def test_stateless_query_order(self, advertised):
        truth = JitteredSchedules(advertised, 0.5, seed=5)
        late = truth.awake_at(35).copy()
        _ = truth.awake_at(2)
        assert np.array_equal(truth.awake_at(35), late)

    def test_every_node_wakes_once_per_period(self, advertised):
        truth = JitteredSchedules(advertised, 0.6, seed=2)
        period = advertised.period
        for k in range(5):
            woke = np.concatenate(
                [truth.awake_at(k * period + p) for p in range(period)]
            )
            assert sorted(woke.tolist()) == list(range(5))

    def test_jitter_fraction_matches_probability(self, advertised):
        prob = 0.4
        truth = JitteredSchedules(advertised, prob, seed=3)
        moved = total = 0
        for k in range(400):
            offs = truth._offsets_for_period(k)
            moved += int((offs != advertised.offsets).sum())
            total += len(advertised)
        # Shifts of ±1 can coincide with the advertised slot only via
        # wraparound in tiny periods; period=10 keeps this clean.
        assert moved / total == pytest.approx(prob, abs=0.05)

    def test_probability_validation(self, advertised):
        with pytest.raises(ValueError):
            JitteredSchedules(advertised, -0.1, seed=1)
        with pytest.raises(ValueError):
            JitteredSchedules(advertised, 1.2, seed=1)
        truth = JitteredSchedules(advertised, 0.5, seed=1)
        with pytest.raises(ValueError):
            truth.awake_at(-1)


class TestEngineSkewMode:
    def test_sleep_misses_counted(self):
        topo = line_topology(4, prr=1.0)
        rng = np.random.default_rng(0)
        advertised = ScheduleTable.random(5, 5, rng)
        truth = JitteredSchedules(advertised, 0.5, seed=9)
        result = run_flood(
            topo, advertised, FloodWorkload(2), make_protocol("dbao"),
            np.random.default_rng(1),
            SimConfig(coverage_target=1.0, max_slots=50_000),
            true_schedules=truth,
        )
        assert result.metrics.sleep_misses > 0
        assert result.completed  # jitter slows, must not deadlock

    def test_no_skew_means_no_misses(self):
        topo = line_topology(4, prr=1.0)
        rng = np.random.default_rng(0)
        advertised = ScheduleTable.random(5, 5, rng)
        result = run_flood(
            topo, advertised, FloodWorkload(2), make_protocol("dbao"),
            np.random.default_rng(1),
            SimConfig(coverage_target=1.0),
        )
        assert result.metrics.sleep_misses == 0

    def test_size_mismatch_rejected(self):
        topo = line_topology(4, prr=1.0)
        rng = np.random.default_rng(0)
        advertised = ScheduleTable.random(5, 5, rng)
        wrong = ScheduleTable.random(7, 5, rng)
        with pytest.raises(ValueError, match="true_schedules"):
            run_flood(
                topo, advertised, FloodWorkload(1), make_protocol("dbao"),
                rng, SimConfig(), true_schedules=wrong,
            )


class TestSkewExperiment:
    def test_delay_degrades_with_jitter(self):
        r = run_experiment_by_id("skew", scale="smoke")
        delays = r.get_series("avg delay").y
        misses = r.get_series("sleep misses").y
        assert delays[-1] > delays[0]
        assert misses[0] == 0 and misses[-1] > 0
