"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"
        assert args.scale == "bench"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--scale", "giant"])

    def test_exec_flags_default_off(self):
        for argv in (["run", "fig10"], ["audit", "fig5"]):
            args = build_parser().parse_args(argv)
            assert args.jobs is None
            assert args.cache_dir is None

    def test_exec_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "fig10", "--jobs", "4", "--cache-dir", ".repro-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == ".repro-cache"
        args = build_parser().parse_args(
            ["audit", "--jobs", "2", "--cache-dir", "c", "fig5"]
        )
        assert args.jobs == 2 and args.cache_dir == "c"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_run_theory_experiment(self, capsys):
        assert main(["run", "fig5", "--scale", "smoke", "--no-sparklines"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_audit_theory_claims(self, capsys):
        assert main(["audit", "--scale", "smoke", "fig5", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
        assert "shape claims hold" in out

    def test_audit_unknown_experiment(self, capsys):
        assert main(["audit", "fig99"]) == 2
        assert "no shape checks" in capsys.readouterr().err

    def test_run_parallel_with_cache_dir(self, tmp_path, capsys):
        # First invocation simulates (misses) and fills the cache ...
        cache = str(tmp_path / "cache")
        assert main(["run", "fig10", "--scale", "smoke", "--jobs", "2",
                     "--cache-dir", cache, "--no-sparklines"]) == 0
        err = capsys.readouterr().err
        assert "[cache]" in err and "0 hit(s)" in err
        # ... the second is answered from the store without simulating.
        assert main(["run", "fig10", "--scale", "smoke",
                     "--cache-dir", cache, "--no-sparklines"]) == 0
        captured = capsys.readouterr()
        assert "0 miss(es)" in captured.err
        assert "avg delay" in captured.out

    def test_cache_dir_collides_with_file(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(["run", "fig10", "--scale", "smoke",
                     "--cache-dir", str(blocker)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_audit_accepts_exec_flags(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["audit", "--scale", "smoke", "--jobs", "1",
                     "--cache-dir", cache, "fig5", "fig7"]) == 0
        captured = capsys.readouterr()
        assert "shape claims hold" in captured.out
        assert "[cache]" in captured.err

    def test_trace_stats_and_save(self, tmp_path, capsys, monkeypatch):
        # Shrink the trace via a patched config for test speed.
        from repro.net import trace as trace_mod

        small = trace_mod.GreenOrbsConfig(
            n_sensors=60, area_m=320.0, n_clusters=3
        )
        orig = trace_mod.synthesize_greenorbs
        monkeypatch.setattr(
            "repro.net.trace.synthesize_greenorbs",
            lambda seed=2011, config=None: orig(seed=seed, config=small),
        )
        out_path = tmp_path / "t.npz"
        assert main(["trace", "--seed", "3", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mean_degree" in out
        assert out_path.exists()
