"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"
        assert args.scale == "bench"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--scale", "giant"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_run_theory_experiment(self, capsys):
        assert main(["run", "fig5", "--scale", "smoke", "--no-sparklines"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_audit_theory_claims(self, capsys):
        assert main(["audit", "--scale", "smoke", "fig5", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
        assert "shape claims hold" in out

    def test_audit_unknown_experiment(self, capsys):
        assert main(["audit", "fig99"]) == 2
        assert "no shape checks" in capsys.readouterr().err

    def test_trace_stats_and_save(self, tmp_path, capsys, monkeypatch):
        # Shrink the trace via a patched config for test speed.
        from repro.net import trace as trace_mod

        small = trace_mod.GreenOrbsConfig(
            n_sensors=60, area_m=320.0, n_clusters=3
        )
        orig = trace_mod.synthesize_greenorbs
        monkeypatch.setattr(
            "repro.net.trace.synthesize_greenorbs",
            lambda seed=2011, config=None: orig(seed=seed, config=small),
        )
        out_path = tmp_path / "t.npz"
        assert main(["trace", "--seed", "3", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mean_degree" in out
        assert out_path.exists()
